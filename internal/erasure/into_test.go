package erasure

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestEncodeIntoMatchesEncode checks the zero-allocation encode against the
// allocating one across schemes and geometries.
func TestEncodeIntoMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, scheme := range []Scheme{ReedSolomon, CauchyReedSolomon} {
		for _, p := range [][2]int{{6, 4}, {9, 6}, {14, 10}} {
			c, err := New(p[0], p[1], scheme)
			if err != nil {
				t.Fatal(err)
			}
			data := randBlocks(rng, c.K(), 1027)
			want, err := c.Encode(data)
			if err != nil {
				t.Fatal(err)
			}
			got := make([][]byte, c.M())
			for i := range got {
				got[i] = make([]byte, 1027)
			}
			if err := c.EncodeInto(data, got); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("%v (%d,%d): EncodeInto parity %d differs from Encode", scheme, p[0], p[1], i)
				}
			}
		}
	}
}

// TestEncodeIntoShapeErrors checks buffer-shape validation.
func TestEncodeIntoShapeErrors(t *testing.T) {
	c, err := New(6, 4, ReedSolomon)
	if err != nil {
		t.Fatal(err)
	}
	data := randBlocks(rand.New(rand.NewSource(2)), 4, 64)
	parity := [][]byte{make([]byte, 64), make([]byte, 64)}
	if err := c.EncodeInto(data, parity[:1]); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("short parity set: got %v, want ErrShapeMismatch", err)
	}
	parity[1] = make([]byte, 63)
	if err := c.EncodeInto(data, parity); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("short parity buffer: got %v, want ErrShapeMismatch", err)
	}
}

// TestEncodeIntoZeroAllocs pins the acceptance criterion: encoding a stripe
// into caller-provided buffers allocates nothing.
func TestEncodeIntoZeroAllocs(t *testing.T) {
	c, err := New(9, 6, ReedSolomon)
	if err != nil {
		t.Fatal(err)
	}
	data := randBlocks(rand.New(rand.NewSource(3)), 6, 64<<10)
	parity := make([][]byte, c.M())
	for i := range parity {
		parity[i] = make([]byte, 64<<10)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := c.EncodeInto(data, parity); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("EncodeInto allocates %.1f objects per stripe, want 0", allocs)
	}
}

// TestReconstructIntoMatchesReconstruct checks the Into decode against the
// allocating one for every single- and double-erasure pattern.
func TestReconstructIntoMatchesReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c, err := New(6, 4, ReedSolomon)
	if err != nil {
		t.Fatal(err)
	}
	data := randBlocks(rng, 4, 513)
	stripe, err := c.EncodeStripe(data)
	if err != nil {
		t.Fatal(err)
	}
	for e1 := 0; e1 < c.N(); e1++ {
		for e2 := e1 + 1; e2 < c.N(); e2++ {
			present := make(map[int][]byte)
			for i, b := range stripe {
				if i != e1 && i != e2 {
					present[i] = b
				}
			}
			want, err := c.Reconstruct(present)
			if err != nil {
				t.Fatal(err)
			}
			out := make([][]byte, c.K())
			for i := range out {
				out[i] = make([]byte, 513)
			}
			if err := c.ReconstructInto(present, out); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if !bytes.Equal(out[i], want[i]) {
					t.Fatalf("erasures (%d,%d): ReconstructInto row %d differs", e1, e2, i)
				}
			}
		}
	}
}

// TestReconstructBlockIntoEveryIndex recovers every stripe position through
// the single-dot-product path, for both data and parity targets, under the
// erasure pattern that kills that position plus one more.
func TestReconstructBlockIntoEveryIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c, err := New(9, 6, CauchyReedSolomon)
	if err != nil {
		t.Fatal(err)
	}
	data := randBlocks(rng, 6, 257)
	stripe, err := c.EncodeStripe(data)
	if err != nil {
		t.Fatal(err)
	}
	for target := 0; target < c.N(); target++ {
		for other := 0; other < c.N(); other++ {
			if other == target {
				continue
			}
			present := make(map[int][]byte)
			for i, b := range stripe {
				if i != target && i != other {
					present[i] = b
				}
			}
			out := make([]byte, 257)
			if err := c.ReconstructBlockInto(present, target, out); err != nil {
				t.Fatalf("target %d, also erased %d: %v", target, other, err)
			}
			if !bytes.Equal(out, stripe[target]) {
				t.Fatalf("target %d, also erased %d: reconstruction differs", target, other)
			}
		}
	}
}

// TestDecodeMatrixCache checks that repeated decodes of one erasure pattern
// reuse the cached inverse and that distinct patterns cache separately.
func TestDecodeMatrixCache(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c, err := New(6, 4, ReedSolomon)
	if err != nil {
		t.Fatal(err)
	}
	data := randBlocks(rng, 4, 64)
	stripe, err := c.EncodeStripe(data)
	if err != nil {
		t.Fatal(err)
	}
	if n := c.invCacheLen(); n != 0 {
		t.Fatalf("fresh coder has %d cached matrices", n)
	}
	lose := func(erased ...int) map[int][]byte {
		present := make(map[int][]byte)
	outer:
		for i, b := range stripe {
			for _, e := range erased {
				if i == e {
					continue outer
				}
			}
			present[i] = b
		}
		return present
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Reconstruct(lose(0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.invCacheLen(); n != 1 {
		t.Fatalf("one pattern decoded 5 times cached %d matrices, want 1", n)
	}
	if _, err := c.Reconstruct(lose(2, 3)); err != nil {
		t.Fatal(err)
	}
	if n := c.invCacheLen(); n != 2 {
		t.Fatalf("two distinct patterns cached %d matrices, want 2", n)
	}
	// All-data survivor sets bypass the solve and must not populate the cache.
	if _, err := c.Reconstruct(lose(4, 5)); err != nil {
		t.Fatal(err)
	}
	if n := c.invCacheLen(); n != 2 {
		t.Fatalf("all-data decode changed the cache to %d entries", n)
	}
}

// TestDecodeMatrixCacheConcurrent hammers one coder with concurrent repairs
// of overlapping erasure patterns; run under -race this is the
// inversion-cache synchronization check.
func TestDecodeMatrixCacheConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c, err := New(9, 6, ReedSolomon)
	if err != nil {
		t.Fatal(err)
	}
	data := randBlocks(rng, 6, 256)
	stripe, err := c.EncodeStripe(data)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				e1 := (g + iter) % c.N()
				e2 := (e1 + 1 + iter%3) % c.N()
				if e1 == e2 {
					continue
				}
				present := make(map[int][]byte)
				for i, b := range stripe {
					if i != e1 && i != e2 {
						present[i] = b
					}
				}
				out := make([]byte, 256)
				if err := c.ReconstructBlockInto(present, e1, out); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(out, stripe[e1]) {
					errs <- fmt.Errorf("concurrent repair of (%d,%d) returned wrong bytes", e1, e2)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := c.invCacheLen(); n == 0 || n > maxInvCacheEntries {
		t.Fatalf("cache holds %d matrices after concurrent repairs", n)
	}
}

// TestDecodeMatrixCacheBounded checks the cache never exceeds its cap. A
// (20, 4) code offers far more survivor patterns than maxInvCacheEntries.
func TestDecodeMatrixCacheBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c, err := New(20, 4, CauchyReedSolomon)
	if err != nil {
		t.Fatal(err)
	}
	data := randBlocks(rng, 4, 32)
	stripe, err := c.EncodeStripe(data)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for a := 0; a < c.N() && count < 2*maxInvCacheEntries; a++ {
		for b := a + 1; b < c.N() && count < 2*maxInvCacheEntries; b++ {
			for d := b + 1; d < c.N() && count < 2*maxInvCacheEntries; d++ {
				present := make(map[int][]byte)
				for i, blk := range stripe {
					if i != a && i != b && i != d {
						present[i] = blk
					}
				}
				// Drop all but the first k survivors beyond index 3 to vary
				// patterns; keep exactly k to force a solve.
				kept := make(map[int][]byte, c.K())
				for i := 0; i < c.N() && len(kept) < c.K(); i++ {
					if blk, ok := present[i]; ok {
						kept[i] = blk
					}
				}
				if _, err := c.Reconstruct(kept); err != nil {
					t.Fatal(err)
				}
				count++
			}
		}
	}
	if n := c.invCacheLen(); n > maxInvCacheEntries {
		t.Fatalf("cache grew to %d entries, cap is %d", n, maxInvCacheEntries)
	}
}

func BenchmarkEncodeInto(b *testing.B) {
	for _, p := range [][2]int{{9, 6}, {14, 10}} {
		b.Run(fmt.Sprintf("rs_%d_%d", p[0], p[1]), func(b *testing.B) {
			c, err := New(p[0], p[1], ReedSolomon)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			data := randBlocks(rng, p[1], 1<<20)
			parity := make([][]byte, c.M())
			for i := range parity {
				parity[i] = make([]byte, 1<<20)
			}
			b.SetBytes(int64(p[1] << 20))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.EncodeInto(data, parity); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReconstructBlockInto(b *testing.B) {
	c, err := New(9, 6, ReedSolomon)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	data := randBlocks(rng, 6, 1<<20)
	stripe, err := c.EncodeStripe(data)
	if err != nil {
		b.Fatal(err)
	}
	present := make(map[int][]byte)
	for i, blk := range stripe {
		if i != 0 && i != 7 {
			present[i] = blk
		}
	}
	out := make([]byte, 1<<20)
	b.SetBytes(6 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.ReconstructBlockInto(present, 0, out); err != nil {
			b.Fatal(err)
		}
	}
}
