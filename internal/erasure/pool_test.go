package erasure

import (
	"sync"
	"testing"
)

func TestBufferPoolReuse(t *testing.T) {
	p := NewBufferPool()
	b1 := p.Get(1024)
	if len(b1) != 1024 {
		t.Fatalf("Get(1024) returned %d bytes", len(b1))
	}
	p.Put(b1)
	b2 := p.Get(1024)
	if len(b2) != 1024 {
		t.Fatalf("second Get(1024) returned %d bytes", len(b2))
	}
	gets, hits := p.Stats()
	if gets != 2 {
		t.Fatalf("gets = %d, want 2", gets)
	}
	// sync.Pool may theoretically drop entries; a hit count above gets is
	// the real invariant violation.
	if hits > gets {
		t.Fatalf("hits %d exceed gets %d", hits, gets)
	}
	if r := p.HitRate(); r < 0 || r > 1 {
		t.Fatalf("hit rate %f out of range", r)
	}
}

func TestBufferPoolSizeClasses(t *testing.T) {
	p := NewBufferPool()
	p.Put(make([]byte, 64))
	if b := p.Get(128); len(b) != 128 {
		t.Fatalf("Get(128) after Put(64) returned %d bytes", len(b))
	}
	if b := p.Get(64); len(b) != 64 {
		t.Fatalf("Get(64) returned %d bytes", len(b))
	}
}

func TestBufferPoolDegenerate(t *testing.T) {
	p := NewBufferPool()
	if b := p.Get(0); b != nil {
		t.Fatalf("Get(0) = %v, want nil", b)
	}
	if b := p.Get(-4); b != nil {
		t.Fatalf("Get(-4) = %v, want nil", b)
	}
	p.Put(nil)      // must not panic
	p.Put([]byte{}) // must not panic
	if gets, _ := p.Stats(); gets != 0 {
		t.Fatalf("degenerate Gets counted: %d", gets)
	}
}

func TestBufferPoolConcurrent(t *testing.T) {
	p := NewBufferPool()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b := p.Get(4096)
				b[0] = byte(i)
				p.Put(b)
			}
		}()
	}
	wg.Wait()
	gets, hits := p.Stats()
	if gets != 8*200 {
		t.Fatalf("gets = %d, want %d", gets, 8*200)
	}
	if hits > gets {
		t.Fatalf("hits %d exceed gets %d", hits, gets)
	}
}
