package erasure

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

var _schemes = []Scheme{ReedSolomon, CauchyReedSolomon}

func randBlocks(rng *rand.Rand, k, size int) [][]byte {
	blocks := make([][]byte, k)
	for i := range blocks {
		blocks[i] = make([]byte, size)
		rng.Read(blocks[i])
	}
	return blocks
}

func TestNewRejectsInvalidParams(t *testing.T) {
	tests := []struct{ n, k int }{
		{0, 0}, {4, 4}, {3, 4}, {4, 0}, {4, -1}, {300, 10},
	}
	for _, tt := range tests {
		if _, err := New(tt.n, tt.k, ReedSolomon); !errors.Is(err, ErrInvalidParams) {
			t.Errorf("New(%d, %d) error = %v, want ErrInvalidParams", tt.n, tt.k, err)
		}
	}
	if _, err := New(6, 4, Scheme(99)); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("unknown scheme error = %v, want ErrInvalidParams", err)
	}
}

func TestSchemeString(t *testing.T) {
	if ReedSolomon.String() != "reed-solomon" {
		t.Errorf("ReedSolomon.String() = %q", ReedSolomon.String())
	}
	if CauchyReedSolomon.String() != "cauchy-reed-solomon" {
		t.Errorf("CauchyReedSolomon.String() = %q", CauchyReedSolomon.String())
	}
	if Scheme(42).String() != "scheme(42)" {
		t.Errorf("Scheme(42).String() = %q", Scheme(42).String())
	}
}

func TestAccessors(t *testing.T) {
	c, err := New(14, 10, ReedSolomon)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if c.N() != 14 || c.K() != 10 || c.M() != 4 || c.Scheme() != ReedSolomon {
		t.Fatalf("accessors wrong: n=%d k=%d m=%d scheme=%v", c.N(), c.K(), c.M(), c.Scheme())
	}
	row, err := c.GeneratorRow(0)
	if err != nil {
		t.Fatalf("GeneratorRow: %v", err)
	}
	if row[0] != 1 {
		t.Fatal("generator not systematic: row 0 should start with 1")
	}
	if _, err := c.GeneratorRow(14); err == nil {
		t.Fatal("expected error for out-of-range generator row")
	}
}

func TestSystematicProperty(t *testing.T) {
	// Encoding then reading the first k stripe blocks must return the data
	// unchanged for both schemes.
	rng := rand.New(rand.NewSource(10))
	for _, scheme := range _schemes {
		c, err := New(9, 6, scheme)
		if err != nil {
			t.Fatalf("New(%v): %v", scheme, err)
		}
		data := randBlocks(rng, 6, 128)
		stripe, err := c.EncodeStripe(data)
		if err != nil {
			t.Fatalf("EncodeStripe: %v", err)
		}
		if len(stripe) != 9 {
			t.Fatalf("stripe has %d blocks, want 9", len(stripe))
		}
		for i := range data {
			if !bytes.Equal(stripe[i], data[i]) {
				t.Fatalf("%v: stripe data block %d modified", scheme, i)
			}
		}
	}
}

func TestEncodeShapeErrors(t *testing.T) {
	c, _ := New(6, 4, ReedSolomon)
	if _, err := c.Encode(randBlocks(rand.New(rand.NewSource(1)), 3, 8)); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("wrong block count error = %v, want ErrShapeMismatch", err)
	}
	blocks := randBlocks(rand.New(rand.NewSource(1)), 4, 8)
	blocks[2] = blocks[2][:5]
	if _, err := c.Encode(blocks); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("ragged blocks error = %v, want ErrShapeMismatch", err)
	}
}

func TestReconstructAllErasurePatterns(t *testing.T) {
	// For a small code, try every possible survivor subset of size >= k and
	// confirm exact reconstruction.
	rng := rand.New(rand.NewSource(11))
	for _, scheme := range _schemes {
		const n, k = 6, 3
		c, err := New(n, k, scheme)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		data := randBlocks(rng, k, 64)
		stripe, err := c.EncodeStripe(data)
		if err != nil {
			t.Fatalf("EncodeStripe: %v", err)
		}
		for mask := 0; mask < 1<<n; mask++ {
			present := make(map[int][]byte)
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					present[i] = stripe[i]
				}
			}
			got, err := c.Reconstruct(present)
			if len(present) < k {
				if !errors.Is(err, ErrTooFewBlocks) {
					t.Fatalf("%v mask %06b: error = %v, want ErrTooFewBlocks", scheme, mask, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%v mask %06b: Reconstruct: %v", scheme, mask, err)
			}
			for i := range data {
				if !bytes.Equal(got[i], data[i]) {
					t.Fatalf("%v mask %06b: data block %d mismatch", scheme, mask, i)
				}
			}
		}
	}
}

func TestReconstructBlockEveryIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const n, k = 8, 5
	for _, scheme := range _schemes {
		c, err := New(n, k, scheme)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		data := randBlocks(rng, k, 32)
		stripe, err := c.EncodeStripe(data)
		if err != nil {
			t.Fatalf("EncodeStripe: %v", err)
		}
		for lost := 0; lost < n; lost++ {
			present := make(map[int][]byte)
			for i := 0; i < n; i++ {
				if i != lost {
					present[i] = stripe[i]
				}
			}
			got, err := c.ReconstructBlock(present, lost)
			if err != nil {
				t.Fatalf("%v: ReconstructBlock(%d): %v", scheme, lost, err)
			}
			if !bytes.Equal(got, stripe[lost]) {
				t.Fatalf("%v: reconstructed block %d mismatch", scheme, lost)
			}
		}
		// Present block short-circuits.
		present := map[int][]byte{2: stripe[2]}
		got, err := c.ReconstructBlock(present, 2)
		if err != nil || !bytes.Equal(got, stripe[2]) {
			t.Fatalf("present short-circuit failed: %v", err)
		}
		if _, err := c.ReconstructBlock(present, n); !errors.Is(err, ErrInvalidParams) {
			t.Fatalf("out-of-range index error = %v", err)
		}
	}
}

func TestVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c, _ := New(10, 8, ReedSolomon)
	data := randBlocks(rng, 8, 100)
	stripe, err := c.EncodeStripe(data)
	if err != nil {
		t.Fatalf("EncodeStripe: %v", err)
	}
	ok, err := c.Verify(stripe)
	if err != nil || !ok {
		t.Fatalf("Verify(valid) = (%v, %v), want (true, nil)", ok, err)
	}
	stripe[9][3] ^= 0x40 // corrupt one parity byte
	ok, err = c.Verify(stripe)
	if err != nil || ok {
		t.Fatalf("Verify(corrupt) = (%v, %v), want (false, nil)", ok, err)
	}
	if _, err := c.Verify(stripe[:5]); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("Verify(short) error = %v, want ErrShapeMismatch", err)
	}
}

func TestPaperCodeParameters(t *testing.T) {
	// The parameters exercised throughout the paper: n = k+2 for k in
	// 4..10 (Experiment A.1), (14,10) Facebook, (16,12) Azure, (5,4) from
	// the motivating example, and (6,3) from the target-rack example.
	rng := rand.New(rand.NewSource(14))
	params := [][2]int{{6, 4}, {8, 6}, {10, 8}, {12, 10}, {14, 10}, {16, 12}, {5, 4}, {6, 3}, {4, 3}}
	for _, p := range params {
		n, k := p[0], p[1]
		c, err := New(n, k, ReedSolomon)
		if err != nil {
			t.Fatalf("New(%d, %d): %v", n, k, err)
		}
		data := randBlocks(rng, k, 256)
		stripe, err := c.EncodeStripe(data)
		if err != nil {
			t.Fatalf("(%d,%d) EncodeStripe: %v", n, k, err)
		}
		// Lose the maximum tolerable n-k blocks, chosen at random.
		present := make(map[int][]byte, k)
		for i, idx := range rng.Perm(n) {
			if i < k {
				present[idx] = stripe[idx]
			}
		}
		got, err := c.Reconstruct(present)
		if err != nil {
			t.Fatalf("(%d,%d) Reconstruct: %v", n, k, err)
		}
		for i := range data {
			if !bytes.Equal(got[i], data[i]) {
				t.Fatalf("(%d,%d) block %d mismatch after max erasures", n, k, i)
			}
		}
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	// Property: for random geometry, data, and erasure pattern, decode
	// inverts encode.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(10)
		n := k + 1 + rng.Intn(6)
		scheme := _schemes[rng.Intn(len(_schemes))]
		c, err := New(n, k, scheme)
		if err != nil {
			return false
		}
		data := randBlocks(rng, k, 1+rng.Intn(64))
		stripe, err := c.EncodeStripe(data)
		if err != nil {
			return false
		}
		present := make(map[int][]byte, k)
		for i, idx := range rng.Perm(n) {
			if i < k {
				present[idx] = stripe[idx]
			}
		}
		got, err := c.Reconstruct(present)
		if err != nil {
			return false
		}
		for i := range data {
			if !bytes.Equal(got[i], data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestReconstructDoesNotAliasInput(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	c, _ := New(6, 4, ReedSolomon)
	data := randBlocks(rng, 4, 16)
	stripe, _ := c.EncodeStripe(data)
	present := make(map[int][]byte)
	for i := 0; i < 4; i++ {
		present[i] = stripe[i]
	}
	got, err := c.Reconstruct(present)
	if err != nil {
		t.Fatalf("Reconstruct: %v", err)
	}
	got[0][0] ^= 0xff
	if stripe[0][0] == got[0][0] {
		t.Fatal("Reconstruct aliases caller data")
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	for _, p := range [][2]int{{10, 8}, {14, 10}} {
		c, err := New(p[0], p[1], ReedSolomon)
		if err != nil {
			b.Fatalf("New: %v", err)
		}
		data := randBlocks(rng, p[1], 1<<20)
		b.Run(c.Scheme().String(), func(b *testing.B) {
			b.SetBytes(int64(p[1]) << 20)
			for i := 0; i < b.N; i++ {
				if _, err := c.Encode(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
