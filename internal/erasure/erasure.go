// Package erasure implements systematic (n, k) maximum-distance-separable
// erasure codes over GF(2^8): k data blocks are expanded with m = n-k parity
// blocks such that any k of the n blocks reconstruct the original data. Two
// constructions are provided, Reed-Solomon codes built from a Vandermonde
// matrix (the construction used by HDFS-RAID, which the paper's prototype
// builds on) and Cauchy Reed-Solomon codes.
package erasure

import (
	"errors"
	"fmt"
	"sync"

	"ear/internal/gf256"
)

// Scheme selects the generator-matrix construction for a Coder.
type Scheme int

const (
	// ReedSolomon is the systematic Vandermonde construction used by
	// HDFS-RAID.
	ReedSolomon Scheme = iota + 1
	// CauchyReedSolomon uses a Cauchy matrix for the parity rows.
	CauchyReedSolomon
)

// String returns the scheme name.
func (s Scheme) String() string {
	switch s {
	case ReedSolomon:
		return "reed-solomon"
	case CauchyReedSolomon:
		return "cauchy-reed-solomon"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Errors returned by the package.
var (
	// ErrInvalidParams indicates an unusable (n, k) pair.
	ErrInvalidParams = errors.New("erasure: invalid code parameters")
	// ErrTooFewBlocks indicates fewer than k blocks survive, so the
	// stripe is unrecoverable.
	ErrTooFewBlocks = errors.New("erasure: too few surviving blocks to reconstruct")
	// ErrShapeMismatch indicates block slices of inconsistent lengths.
	ErrShapeMismatch = errors.New("erasure: block length mismatch")
)

// maxInvCacheEntries bounds the decode-matrix cache. C(n, k) survivor
// patterns exist in principle; real clusters repair the same few patterns
// over and over, so a small bound holds the working set while capping memory.
const maxInvCacheEntries = 512

// Coder encodes and decodes one stripe geometry. It is safe for concurrent
// use: the generator state is immutable after construction and the
// inversion-matrix cache is internally synchronized.
type Coder struct {
	n, k   int
	scheme Scheme
	// gen is the full n x k systematic generator matrix: the top k rows are
	// the identity and the bottom n-k rows produce parity blocks.
	gen *gf256.Matrix
	// parity is the bottom (n-k) x k portion of gen.
	parity *gf256.Matrix
	// parityRows holds the parity coefficient rows contiguously so the
	// encode hot path never copies matrix rows.
	parityRows [][]byte

	// invMu guards invCache, the decode matrices keyed by survivor index
	// set: repeated degraded reads and repairs of the same erasure pattern
	// skip the O(k^3) Gauss-Jordan invert.
	invMu    sync.RWMutex
	invCache map[string]*gf256.Matrix
}

// New returns a Coder for an (n, k) code with the given scheme. It requires
// 0 < k < n <= 256.
func New(n, k int, scheme Scheme) (*Coder, error) {
	if k <= 0 || n <= k || n > 256 {
		return nil, fmt.Errorf("%w: (n, k) = (%d, %d)", ErrInvalidParams, n, k)
	}
	var parity *gf256.Matrix
	var err error
	switch scheme {
	case ReedSolomon:
		parity, err = systematicVandermondeParity(n, k)
	case CauchyReedSolomon:
		parity, err = gf256.Cauchy(n-k, k)
	default:
		return nil, fmt.Errorf("%w: unknown scheme %v", ErrInvalidParams, scheme)
	}
	if err != nil {
		return nil, fmt.Errorf("build parity matrix: %w", err)
	}
	id, err := gf256.Identity(k)
	if err != nil {
		return nil, err
	}
	rows := make([][]byte, 0, n)
	for r := 0; r < k; r++ {
		rows = append(rows, id.Row(r))
	}
	for r := 0; r < n-k; r++ {
		rows = append(rows, parity.Row(r))
	}
	gen, err := gf256.NewMatrixFromRows(rows)
	if err != nil {
		return nil, err
	}
	parityRows := make([][]byte, n-k)
	for r := range parityRows {
		parityRows[r] = parity.Row(r)
	}
	return &Coder{
		n: n, k: k, scheme: scheme, gen: gen, parity: parity,
		parityRows: parityRows,
		invCache:   make(map[string]*gf256.Matrix),
	}, nil
}

// systematicVandermondeParity derives the parity portion of a systematic
// generator from an n x k Vandermonde matrix V: multiplying V by the inverse
// of its top k x k square yields a systematic generator whose every k x k row
// subset remains invertible.
func systematicVandermondeParity(n, k int) (*gf256.Matrix, error) {
	v, err := gf256.Vandermonde(n, k)
	if err != nil {
		return nil, err
	}
	topRows := make([]int, k)
	for i := range topRows {
		topRows[i] = i
	}
	top, err := v.SelectRows(topRows)
	if err != nil {
		return nil, err
	}
	topInv, err := top.Invert()
	if err != nil {
		return nil, err
	}
	sys, err := v.Mul(topInv)
	if err != nil {
		return nil, err
	}
	return sys.SubMatrix(k, n, 0, k)
}

// N returns the stripe width (data + parity blocks).
func (c *Coder) N() int { return c.n }

// K returns the number of data blocks per stripe.
func (c *Coder) K() int { return c.k }

// M returns the number of parity blocks per stripe, n - k.
func (c *Coder) M() int { return c.n - c.k }

// Scheme returns the generator construction in use.
func (c *Coder) Scheme() Scheme { return c.scheme }

// GeneratorRow returns a copy of row i of the systematic generator matrix.
func (c *Coder) GeneratorRow(i int) ([]byte, error) {
	if i < 0 || i >= c.n {
		return nil, fmt.Errorf("%w: generator row %d of %d", ErrInvalidParams, i, c.n)
	}
	return c.gen.Row(i), nil
}

func checkShape(blocks [][]byte, want int) (int, error) {
	if len(blocks) != want {
		return 0, fmt.Errorf("%w: got %d blocks, want %d", ErrShapeMismatch, len(blocks), want)
	}
	size := len(blocks[0])
	for i, b := range blocks {
		if len(b) != size {
			return 0, fmt.Errorf("%w: block %d has %d bytes, block 0 has %d", ErrShapeMismatch, i, len(b), size)
		}
	}
	return size, nil
}

// Encode computes the m parity blocks for the given k data blocks. All data
// blocks must have equal length; the returned parity blocks have the same
// length. The data blocks are not modified.
func (c *Coder) Encode(data [][]byte) ([][]byte, error) {
	size, err := checkShape(data, c.k)
	if err != nil {
		return nil, err
	}
	parity := make([][]byte, c.M())
	backing := make([]byte, c.M()*size)
	for i := range parity {
		parity[i], backing = backing[:size:size], backing[size:]
	}
	if err := c.EncodeInto(data, parity); err != nil {
		return nil, err
	}
	return parity, nil
}

// EncodeInto computes the m parity blocks for the given k data blocks into
// the caller-provided parity buffers, allocating nothing: the zero-copy
// encode primitive for buffer-pooled hot paths. parity must hold exactly m
// blocks of the data blocks' common length; parity buffers must not alias
// data blocks. The data blocks are not modified.
func (c *Coder) EncodeInto(data, parity [][]byte) error {
	size, err := checkShape(data, c.k)
	if err != nil {
		return err
	}
	if len(parity) != c.M() {
		return fmt.Errorf("%w: got %d parity buffers, want %d", ErrShapeMismatch, len(parity), c.M())
	}
	for i, p := range parity {
		if len(p) != size {
			return fmt.Errorf("%w: parity buffer %d has %d bytes, data has %d", ErrShapeMismatch, i, len(p), size)
		}
	}
	for i := range parity {
		gf256.DotProduct(c.parityRows[i], data, parity[i])
	}
	return nil
}

// parityRow returns (without copying) row i of the parity matrix.
func (c *Coder) parityRow(i int) []byte { return c.parityRows[i] }

// ParityRowView returns (without copying) row i of the parity coefficient
// matrix: k coefficients, one per data position. Callers must treat the row
// as immutable. The pipelined encoder distributes these rows to the replica
// holders so each hop can fold its local blocks into the partial parity
// sums with MulAddSlice.
func (c *Coder) ParityRowView(i int) ([]byte, error) {
	if i < 0 || i >= c.M() {
		return nil, fmt.Errorf("%w: parity row %d of %d", ErrInvalidParams, i, c.M())
	}
	return c.parityRows[i], nil
}

// EncodeStripe returns the complete stripe: the k data blocks (shared, not
// copied) followed by the m freshly computed parity blocks.
func (c *Coder) EncodeStripe(data [][]byte) ([][]byte, error) {
	parity, err := c.Encode(data)
	if err != nil {
		return nil, err
	}
	stripe := make([][]byte, 0, c.n)
	stripe = append(stripe, data...)
	stripe = append(stripe, parity...)
	return stripe, nil
}

// pickSurvivors chooses k surviving stripe indices deterministically
// (ascending, preferring data blocks since they need no matrix solve when
// all k survive) and gathers their blocks into the caller's slice.
func (c *Coder) pickSurvivors(present map[int][]byte, indices []int, blocks [][]byte) ([]int, [][]byte, error) {
	if len(present) < c.k {
		return nil, nil, fmt.Errorf("%w: have %d, need %d", ErrTooFewBlocks, len(present), c.k)
	}
	indices = indices[:0]
	for i := 0; i < c.n && len(indices) < c.k; i++ {
		if _, ok := present[i]; ok {
			indices = append(indices, i)
		}
	}
	if len(indices) < c.k {
		return nil, nil, fmt.Errorf("%w: have %d valid indices, need %d", ErrTooFewBlocks, len(indices), c.k)
	}
	blocks = blocks[:0]
	for _, idx := range indices {
		blocks = append(blocks, present[idx])
	}
	return indices, blocks, nil
}

// decodeMatrix returns the inverse of the generator rows selected by the
// survivor indices, consulting the cache first. Concurrent repairs of the
// same erasure pattern share one invert; distinct patterns cache
// independently up to maxInvCacheEntries.
func (c *Coder) decodeMatrix(indices []int) (*gf256.Matrix, error) {
	keyBytes := make([]byte, len(indices))
	for i, idx := range indices {
		keyBytes[i] = byte(idx)
	}
	key := string(keyBytes)

	c.invMu.RLock()
	inv, ok := c.invCache[key]
	c.invMu.RUnlock()
	if ok {
		return inv, nil
	}

	sub, err := c.gen.SelectRows(indices)
	if err != nil {
		return nil, err
	}
	inv, err = sub.Invert()
	if err != nil {
		return nil, fmt.Errorf("invert decode matrix: %w", err)
	}

	c.invMu.Lock()
	if cached, ok := c.invCache[key]; ok {
		// A concurrent repair of the same pattern won the race; share its
		// matrix so every caller sees one canonical instance.
		inv = cached
	} else {
		if len(c.invCache) >= maxInvCacheEntries {
			for k := range c.invCache {
				delete(c.invCache, k)
				break
			}
		}
		c.invCache[key] = inv
	}
	c.invMu.Unlock()
	return inv, nil
}

// invCacheLen reports the number of cached decode matrices (for tests and
// pool telemetry).
func (c *Coder) invCacheLen() int {
	c.invMu.RLock()
	defer c.invMu.RUnlock()
	return len(c.invCache)
}

// Reconstruct recovers the original k data blocks from any k surviving
// blocks of the stripe. present maps stripe index (0..n-1, data first) to
// the surviving block content. It returns the k data blocks in order.
func (c *Coder) Reconstruct(present map[int][]byte) ([][]byte, error) {
	size := c.survivorBlockSize(present)
	out := make([][]byte, c.k)
	backing := make([]byte, c.k*size)
	for r := range out {
		out[r], backing = backing[:size:size], backing[size:]
	}
	if err := c.ReconstructInto(present, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReconstructInto recovers the original k data blocks from any k surviving
// blocks into the caller-provided buffers: the zero-copy decode primitive
// for buffer-pooled hot paths. out must hold k buffers of the survivors'
// common block length; out buffers must not alias survivor blocks. The
// decode matrix for the survivor pattern is cached, so repeated degraded
// reads of one erasure pattern skip the O(k^3) invert.
func (c *Coder) ReconstructInto(present map[int][]byte, out [][]byte) error {
	indexBuf := make([]int, 0, c.k)
	blockBuf := make([][]byte, 0, c.k)
	indices, blocks, err := c.pickSurvivors(present, indexBuf, blockBuf)
	if err != nil {
		return err
	}
	size, err := checkShape(blocks, c.k)
	if err != nil {
		return err
	}
	if len(out) != c.k {
		return fmt.Errorf("%w: got %d output buffers, want %d", ErrShapeMismatch, len(out), c.k)
	}
	for i, o := range out {
		if len(o) != size {
			return fmt.Errorf("%w: output buffer %d has %d bytes, blocks have %d", ErrShapeMismatch, i, len(o), size)
		}
	}

	allData := true
	for i, idx := range indices {
		if idx != i {
			allData = false
			break
		}
	}
	if allData {
		for i, b := range blocks {
			copy(out[i], b)
		}
		return nil
	}

	inv, err := c.decodeMatrix(indices)
	if err != nil {
		return err
	}
	for r := 0; r < c.k; r++ {
		gf256.DotProduct(inv.RowView(r), blocks, out[r])
	}
	return nil
}

// ReconstructBlock recovers a single stripe block (data or parity) by index
// from any k surviving blocks. This is the degraded-read / repair primitive:
// a node recovering block idx downloads k blocks and solves for it.
func (c *Coder) ReconstructBlock(present map[int][]byte, idx int) ([]byte, error) {
	if idx >= 0 && idx < c.n {
		if b, ok := present[idx]; ok {
			return append([]byte(nil), b...), nil
		}
	}
	out := make([]byte, c.survivorBlockSize(present))
	if err := c.ReconstructBlockInto(present, idx, out); err != nil {
		return nil, err
	}
	return out, nil
}

// survivorBlockSize returns the length of the survivor block at the
// smallest stripe index — the first block pickSurvivors will select — so
// the allocating wrappers size their buffers consistently with the decode.
func (c *Coder) survivorBlockSize(present map[int][]byte) int {
	for i := 0; i < c.n; i++ {
		if b, ok := present[i]; ok {
			return len(b)
		}
	}
	return 0
}

// ReconstructBlockInto recovers a single stripe block (data or parity) by
// index into the caller-provided buffer. The recovery is a single fused dot
// product over the k survivor blocks: for a data block the coefficients are
// the matching row of the cached decode matrix, and for a parity block the
// parity row is folded through the decode matrix first (P·Inv), so no
// intermediate data-block buffers are materialized.
func (c *Coder) ReconstructBlockInto(present map[int][]byte, idx int, out []byte) error {
	if idx < 0 || idx >= c.n {
		return fmt.Errorf("%w: block index %d of %d", ErrInvalidParams, idx, c.n)
	}
	if b, ok := present[idx]; ok {
		if len(b) != len(out) {
			return fmt.Errorf("%w: output buffer has %d bytes, block has %d", ErrShapeMismatch, len(out), len(b))
		}
		copy(out, b)
		return nil
	}
	indexBuf := make([]int, 0, c.k)
	blockBuf := make([][]byte, 0, c.k)
	indices, blocks, err := c.pickSurvivors(present, indexBuf, blockBuf)
	if err != nil {
		return err
	}
	size, err := checkShape(blocks, c.k)
	if err != nil {
		return err
	}
	if len(out) != size {
		return fmt.Errorf("%w: output buffer has %d bytes, blocks have %d", ErrShapeMismatch, len(out), size)
	}

	var coeffBuf [256]byte
	coeffs := coeffBuf[:c.k]
	if err := c.decodeRowInto(indices, idx, coeffs); err != nil {
		return err
	}
	gf256.DotProduct(coeffs, blocks, out)
	return nil
}

// DecodeRow returns the GF(256) coefficients that express stripe block idx
// as a linear combination of k survivor blocks: content[idx] = sum over i
// of coeffs[i]*content[indices[i]]. indices must be k distinct stripe
// indices in ascending order (the order pickSurvivors produces). The matrix
// behind the coefficients comes from the inversion cache, so repeated
// repairs of one erasure pattern skip the O(k^3) solve. This is the
// two-level repair path's planning primitive: each repair-pipeline hop
// multiplies its locally held survivors by their coefficients and folds
// them into one partial sum — distributing the exact dot product
// ReconstructBlockInto would compute centrally.
func (c *Coder) DecodeRow(indices []int, idx int) ([]byte, error) {
	if idx < 0 || idx >= c.n {
		return nil, fmt.Errorf("%w: block index %d of %d", ErrInvalidParams, idx, c.n)
	}
	if len(indices) != c.k {
		return nil, fmt.Errorf("%w: got %d survivor indices, want %d", ErrInvalidParams, len(indices), c.k)
	}
	coeffs := make([]byte, c.k)
	for i, sidx := range indices {
		if sidx < 0 || sidx >= c.n || (i > 0 && sidx <= indices[i-1]) {
			return nil, fmt.Errorf("%w: survivor indices must be ascending stripe indices, got %v", ErrInvalidParams, indices)
		}
		if sidx == idx {
			// The target is itself a survivor: the unit row selects it.
			coeffs[i] = 1
			return coeffs, nil
		}
	}
	if err := c.decodeRowInto(indices, idx, coeffs); err != nil {
		return nil, err
	}
	return coeffs, nil
}

// decodeRowInto fills coeffs (length k) with the decode coefficients for
// target idx, which must not appear among the ascending survivor indices.
// Shared by the central reconstruction dot product and the exported
// DecodeRow view.
func (c *Coder) decodeRowInto(indices []int, idx int, coeffs []byte) error {
	allData := true
	for i, sidx := range indices {
		if sidx != i {
			allData = false
			break
		}
	}
	if allData {
		// idx is not a survivor, so with survivors 0..k-1 it must be a
		// parity block: the generator's parity row is the decode row.
		copy(coeffs, c.parityRows[idx-c.k])
		return nil
	}
	inv, err := c.decodeMatrix(indices)
	if err != nil {
		return err
	}
	if idx < c.k {
		copy(coeffs, inv.RowView(idx))
		return nil
	}
	// Fold the parity row through the decode matrix: coeffs = P_row · Inv.
	prow := c.parityRows[idx-c.k]
	for j := 0; j < c.k; j++ {
		var acc byte
		for m := 0; m < c.k; m++ {
			acc ^= gf256.Mul(prow[m], inv.At(m, j))
		}
		coeffs[j] = acc
	}
	return nil
}

// Verify reports whether the given full stripe (k data followed by m parity
// blocks) is consistent: recomputing parity from the data yields the stored
// parity blocks.
func (c *Coder) Verify(stripe [][]byte) (bool, error) {
	if _, err := checkShape(stripe, c.n); err != nil {
		return false, err
	}
	parity, err := c.Encode(stripe[:c.k])
	if err != nil {
		return false, err
	}
	for i, p := range parity {
		stored := stripe[c.k+i]
		for j := range p {
			if p[j] != stored[j] {
				return false, nil
			}
		}
	}
	return true, nil
}
