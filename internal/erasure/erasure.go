// Package erasure implements systematic (n, k) maximum-distance-separable
// erasure codes over GF(2^8): k data blocks are expanded with m = n-k parity
// blocks such that any k of the n blocks reconstruct the original data. Two
// constructions are provided, Reed-Solomon codes built from a Vandermonde
// matrix (the construction used by HDFS-RAID, which the paper's prototype
// builds on) and Cauchy Reed-Solomon codes.
package erasure

import (
	"errors"
	"fmt"

	"ear/internal/gf256"
)

// Scheme selects the generator-matrix construction for a Coder.
type Scheme int

const (
	// ReedSolomon is the systematic Vandermonde construction used by
	// HDFS-RAID.
	ReedSolomon Scheme = iota + 1
	// CauchyReedSolomon uses a Cauchy matrix for the parity rows.
	CauchyReedSolomon
)

// String returns the scheme name.
func (s Scheme) String() string {
	switch s {
	case ReedSolomon:
		return "reed-solomon"
	case CauchyReedSolomon:
		return "cauchy-reed-solomon"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Errors returned by the package.
var (
	// ErrInvalidParams indicates an unusable (n, k) pair.
	ErrInvalidParams = errors.New("erasure: invalid code parameters")
	// ErrTooFewBlocks indicates fewer than k blocks survive, so the
	// stripe is unrecoverable.
	ErrTooFewBlocks = errors.New("erasure: too few surviving blocks to reconstruct")
	// ErrShapeMismatch indicates block slices of inconsistent lengths.
	ErrShapeMismatch = errors.New("erasure: block length mismatch")
)

// Coder encodes and decodes one stripe geometry. It is safe for concurrent
// use: all state is immutable after construction.
type Coder struct {
	n, k   int
	scheme Scheme
	// gen is the full n x k systematic generator matrix: the top k rows are
	// the identity and the bottom n-k rows produce parity blocks.
	gen *gf256.Matrix
	// parity is the bottom (n-k) x k portion of gen.
	parity *gf256.Matrix
}

// New returns a Coder for an (n, k) code with the given scheme. It requires
// 0 < k < n <= 256.
func New(n, k int, scheme Scheme) (*Coder, error) {
	if k <= 0 || n <= k || n > 256 {
		return nil, fmt.Errorf("%w: (n, k) = (%d, %d)", ErrInvalidParams, n, k)
	}
	var parity *gf256.Matrix
	var err error
	switch scheme {
	case ReedSolomon:
		parity, err = systematicVandermondeParity(n, k)
	case CauchyReedSolomon:
		parity, err = gf256.Cauchy(n-k, k)
	default:
		return nil, fmt.Errorf("%w: unknown scheme %v", ErrInvalidParams, scheme)
	}
	if err != nil {
		return nil, fmt.Errorf("build parity matrix: %w", err)
	}
	id, err := gf256.Identity(k)
	if err != nil {
		return nil, err
	}
	rows := make([][]byte, 0, n)
	for r := 0; r < k; r++ {
		rows = append(rows, id.Row(r))
	}
	for r := 0; r < n-k; r++ {
		rows = append(rows, parity.Row(r))
	}
	gen, err := gf256.NewMatrixFromRows(rows)
	if err != nil {
		return nil, err
	}
	return &Coder{n: n, k: k, scheme: scheme, gen: gen, parity: parity}, nil
}

// systematicVandermondeParity derives the parity portion of a systematic
// generator from an n x k Vandermonde matrix V: multiplying V by the inverse
// of its top k x k square yields a systematic generator whose every k x k row
// subset remains invertible.
func systematicVandermondeParity(n, k int) (*gf256.Matrix, error) {
	v, err := gf256.Vandermonde(n, k)
	if err != nil {
		return nil, err
	}
	topRows := make([]int, k)
	for i := range topRows {
		topRows[i] = i
	}
	top, err := v.SelectRows(topRows)
	if err != nil {
		return nil, err
	}
	topInv, err := top.Invert()
	if err != nil {
		return nil, err
	}
	sys, err := v.Mul(topInv)
	if err != nil {
		return nil, err
	}
	return sys.SubMatrix(k, n, 0, k)
}

// N returns the stripe width (data + parity blocks).
func (c *Coder) N() int { return c.n }

// K returns the number of data blocks per stripe.
func (c *Coder) K() int { return c.k }

// M returns the number of parity blocks per stripe, n - k.
func (c *Coder) M() int { return c.n - c.k }

// Scheme returns the generator construction in use.
func (c *Coder) Scheme() Scheme { return c.scheme }

// GeneratorRow returns a copy of row i of the systematic generator matrix.
func (c *Coder) GeneratorRow(i int) ([]byte, error) {
	if i < 0 || i >= c.n {
		return nil, fmt.Errorf("%w: generator row %d of %d", ErrInvalidParams, i, c.n)
	}
	return c.gen.Row(i), nil
}

func checkShape(blocks [][]byte, want int) (int, error) {
	if len(blocks) != want {
		return 0, fmt.Errorf("%w: got %d blocks, want %d", ErrShapeMismatch, len(blocks), want)
	}
	size := len(blocks[0])
	for i, b := range blocks {
		if len(b) != size {
			return 0, fmt.Errorf("%w: block %d has %d bytes, block 0 has %d", ErrShapeMismatch, i, len(b), size)
		}
	}
	return size, nil
}

// Encode computes the m parity blocks for the given k data blocks. All data
// blocks must have equal length; the returned parity blocks have the same
// length. The data blocks are not modified.
func (c *Coder) Encode(data [][]byte) ([][]byte, error) {
	size, err := checkShape(data, c.k)
	if err != nil {
		return nil, err
	}
	parity := make([][]byte, c.M())
	backing := make([]byte, c.M()*size)
	for i := range parity {
		parity[i], backing = backing[:size:size], backing[size:]
		gf256.DotProduct(c.parityRow(i), data, parity[i])
	}
	return parity, nil
}

// parityRow returns (without copying) row i of the parity matrix.
func (c *Coder) parityRow(i int) []byte {
	row := make([]byte, c.k)
	for j := 0; j < c.k; j++ {
		row[j] = c.parity.At(i, j)
	}
	return row
}

// EncodeStripe returns the complete stripe: the k data blocks (shared, not
// copied) followed by the m freshly computed parity blocks.
func (c *Coder) EncodeStripe(data [][]byte) ([][]byte, error) {
	parity, err := c.Encode(data)
	if err != nil {
		return nil, err
	}
	stripe := make([][]byte, 0, c.n)
	stripe = append(stripe, data...)
	stripe = append(stripe, parity...)
	return stripe, nil
}

// Reconstruct recovers the original k data blocks from any k surviving
// blocks of the stripe. present maps stripe index (0..n-1, data first) to
// the surviving block content. It returns the k data blocks in order.
func (c *Coder) Reconstruct(present map[int][]byte) ([][]byte, error) {
	if len(present) < c.k {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrTooFewBlocks, len(present), c.k)
	}
	// Choose k surviving indices deterministically (ascending), preferring
	// data blocks since they need no matrix solve when all k survive.
	indices := make([]int, 0, c.k)
	for i := 0; i < c.n && len(indices) < c.k; i++ {
		if _, ok := present[i]; ok {
			indices = append(indices, i)
		}
	}
	if len(indices) < c.k {
		return nil, fmt.Errorf("%w: have %d valid indices, need %d", ErrTooFewBlocks, len(indices), c.k)
	}
	blocks := make([][]byte, c.k)
	for i, idx := range indices {
		blocks[i] = present[idx]
	}
	size, err := checkShape(blocks, c.k)
	if err != nil {
		return nil, err
	}

	allData := true
	for i, idx := range indices {
		if idx != i {
			allData = false
			break
		}
	}
	if allData {
		out := make([][]byte, c.k)
		for i, b := range blocks {
			out[i] = append([]byte(nil), b...)
		}
		return out, nil
	}

	sub, err := c.gen.SelectRows(indices)
	if err != nil {
		return nil, err
	}
	inv, err := sub.Invert()
	if err != nil {
		return nil, fmt.Errorf("invert decode matrix: %w", err)
	}
	out := make([][]byte, c.k)
	backing := make([]byte, c.k*size)
	for r := 0; r < c.k; r++ {
		out[r], backing = backing[:size:size], backing[size:]
		gf256.DotProduct(inv.Row(r), blocks, out[r])
	}
	return out, nil
}

// ReconstructBlock recovers a single stripe block (data or parity) by index
// from any k surviving blocks. This is the degraded-read / repair primitive:
// a node recovering block idx downloads k blocks and solves for it.
func (c *Coder) ReconstructBlock(present map[int][]byte, idx int) ([]byte, error) {
	if idx < 0 || idx >= c.n {
		return nil, fmt.Errorf("%w: block index %d of %d", ErrInvalidParams, idx, c.n)
	}
	if b, ok := present[idx]; ok {
		return append([]byte(nil), b...), nil
	}
	data, err := c.Reconstruct(present)
	if err != nil {
		return nil, err
	}
	if idx < c.k {
		return data[idx], nil
	}
	out := make([]byte, len(data[0]))
	gf256.DotProduct(c.parityRow(idx-c.k), data, out)
	return out, nil
}

// Verify reports whether the given full stripe (k data followed by m parity
// blocks) is consistent: recomputing parity from the data yields the stored
// parity blocks.
func (c *Coder) Verify(stripe [][]byte) (bool, error) {
	if _, err := checkShape(stripe, c.n); err != nil {
		return false, err
	}
	parity, err := c.Encode(stripe[:c.k])
	if err != nil {
		return false, err
	}
	for i, p := range parity {
		stored := stripe[c.k+i]
		for j := range p {
			if p[j] != stored[j] {
				return false, nil
			}
		}
	}
	return true, nil
}
