package erasure

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"ear/internal/gf256"
)

// TestDecodeRowReconstructs checks the decode-row view against ground
// truth: for every geometry, scheme, lost position, and two survivor
// flavors (data-preferring and parity-heavy), the dot product of the
// returned coefficients with the survivor blocks must equal the lost
// block exactly, and a position that is itself a survivor must come back
// as a unit vector.
func TestDecodeRowReconstructs(t *testing.T) {
	geoms := []struct{ n, k int }{{6, 4}, {9, 6}, {14, 10}}
	for _, scheme := range _schemes {
		for _, g := range geoms {
			c, err := New(g.n, g.k, scheme)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(g.n*100 + g.k)))
			const size = 512
			data := make([][]byte, g.k)
			for i := range data {
				data[i] = make([]byte, size)
				rng.Read(data[i])
			}
			parity, err := c.Encode(data)
			if err != nil {
				t.Fatal(err)
			}
			blockAt := func(pos int) []byte {
				if pos < g.k {
					return data[pos]
				}
				return parity[pos-g.k]
			}
			// lowest / highest k positions excluding idx: the first set is
			// all-data for data losses (the fast path), the second leans on
			// parity rows (the folded P·Inv path).
			survivorSets := func(idx int) [][]int {
				var low, high []int
				for p := 0; p < g.n && len(low) < g.k; p++ {
					if p != idx {
						low = append(low, p)
					}
				}
				for p := g.n - 1; p >= 0 && len(high) < g.k; p-- {
					if p != idx {
						high = append(high, p)
					}
				}
				for i, j := 0, len(high)-1; i < j; i, j = i+1, j-1 {
					high[i], high[j] = high[j], high[i]
				}
				return [][]int{low, high}
			}
			for idx := 0; idx < g.n; idx++ {
				for _, indices := range survivorSets(idx) {
					row, err := c.DecodeRow(indices, idx)
					if err != nil {
						t.Fatalf("(%d,%d) %v DecodeRow(%v, %d): %v", g.n, g.k, scheme, indices, idx, err)
					}
					got := make([]byte, size)
					for i, pos := range indices {
						if row[i] != 0 {
							gf256.MulAddSlice(row[i], blockAt(pos), got)
						}
					}
					if !bytes.Equal(got, blockAt(idx)) {
						t.Fatalf("(%d,%d) %v: decode row for %d over %v does not reproduce the block",
							g.n, g.k, scheme, idx, indices)
					}
				}
				// A survivor position decodes as itself.
				indices := survivorSets((idx + 1) % g.n)[0]
				for i, pos := range indices {
					if pos != idx {
						continue
					}
					row, err := c.DecodeRow(indices, idx)
					if err != nil {
						t.Fatal(err)
					}
					for j, coef := range row {
						want := byte(0)
						if j == i {
							want = 1
						}
						if coef != want {
							t.Fatalf("(%d,%d) %v: row for surviving %d not a unit vector: %v",
								g.n, g.k, scheme, idx, row)
						}
					}
				}
			}
		}
	}
}

func TestDecodeRowValidation(t *testing.T) {
	c, err := New(6, 4, ReedSolomon)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		indices []int
		idx     int
	}{
		{"short survivor set", []int{0, 1, 2}, 5},
		{"index out of range", []int{0, 1, 2, 3}, 6},
		{"negative index", []int{0, 1, 2, 3}, -1},
		{"unsorted survivors", []int{1, 0, 2, 3}, 5},
		{"duplicate survivors", []int{0, 0, 2, 3}, 5},
		{"survivor out of range", []int{0, 1, 2, 6}, 5},
	} {
		if _, err := c.DecodeRow(tc.indices, tc.idx); !errors.Is(err, ErrInvalidParams) {
			t.Errorf("%s: DecodeRow(%v, %d) = %v, want ErrInvalidParams", tc.name, tc.indices, tc.idx, err)
		}
	}
}
