package blockstore

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := New()
	key := Key{ID: 7, Kind: Data}
	data := []byte("block content")
	if err := s.Put(key, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get(key)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("content mismatch")
	}
	// Returned copy must not alias stored data.
	got[0] = 'X'
	again, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if again[0] == 'X' {
		t.Fatal("Get aliases stored data")
	}
	// Input copy: mutating the original must not affect the store.
	data[1] = 'Z'
	again, _ = s.Get(key)
	if again[1] == 'Z' {
		t.Fatal("Put aliases caller data")
	}
}

func TestPutDuplicate(t *testing.T) {
	s := New()
	key := Key{ID: 1, Kind: Data}
	if err := s.Put(key, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key, []byte("b")); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate Put error = %v", err)
	}
	// Same ID, different kind is a different key.
	if err := s.Put(Key{ID: 1, Kind: Parity}, []byte("p")); err != nil {
		t.Errorf("parity with same ID: %v", err)
	}
}

func TestGetMissing(t *testing.T) {
	s := New()
	if _, err := s.Get(Key{ID: 404, Kind: Data}); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing Get error = %v", err)
	}
}

func TestDelete(t *testing.T) {
	s := New()
	key := Key{ID: 2, Kind: Data}
	if err := s.Put(key, []byte("xy")); err != nil {
		t.Fatal(err)
	}
	if s.Bytes() != 2 || s.Len() != 1 {
		t.Fatalf("Bytes=%d Len=%d", s.Bytes(), s.Len())
	}
	if err := s.Delete(key); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if s.Bytes() != 0 || s.Len() != 0 {
		t.Fatalf("after delete Bytes=%d Len=%d", s.Bytes(), s.Len())
	}
	if err := s.Delete(key); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete error = %v", err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	s := New()
	key := Key{ID: 3, Kind: Parity}
	if err := s.Put(key, []byte("parity bytes")); err != nil {
		t.Fatal(err)
	}
	if err := s.Corrupt(key); err != nil {
		t.Fatalf("Corrupt: %v", err)
	}
	if _, err := s.Get(key); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupted Get error = %v", err)
	}
	if err := s.Corrupt(Key{ID: 9, Kind: Data}); !errors.Is(err, ErrNotFound) {
		t.Errorf("Corrupt missing error = %v", err)
	}
}

func TestHasKeysClear(t *testing.T) {
	s := New()
	keys := []Key{{ID: 5, Kind: Parity}, {ID: 1, Kind: Data}, {ID: 3, Kind: Data}}
	for _, k := range keys {
		if err := s.Put(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Has(keys[0]) || s.Has(Key{ID: 99, Kind: Data}) {
		t.Error("Has wrong")
	}
	sorted := s.Keys()
	want := []Key{{ID: 1, Kind: Data}, {ID: 3, Kind: Data}, {ID: 5, Kind: Parity}}
	for i := range want {
		if sorted[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", sorted, want)
		}
	}
	s.Clear()
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Error("Clear incomplete")
	}
}

func TestKindAndKeyString(t *testing.T) {
	if Data.String() != "data" || Parity.String() != "parity" || Kind(9).String() != "kind(9)" {
		t.Error("Kind.String wrong")
	}
	if (Key{ID: 4, Kind: Data}).String() != "data/4" {
		t.Error("Key.String wrong")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := Key{ID: int64(i), Kind: Data}
			if err := s.Put(key, []byte{byte(i)}); err != nil {
				t.Error(err)
				return
			}
			got, err := s.Get(key)
			if err != nil || got[0] != byte(i) {
				t.Errorf("Get(%v): %v", key, err)
			}
			_ = s.Has(key)
			_ = s.Keys()
			_ = s.Bytes()
		}()
	}
	wg.Wait()
	if s.Len() != 16 {
		t.Errorf("Len = %d, want 16", s.Len())
	}
}
