// Package blockstore implements the per-DataNode block storage of the
// mini-HDFS testbed: an in-memory, checksum-verified store of fixed-role
// blocks (data replicas and parity blocks). HDFS DataNodes keep blocks as
// files with CRC sidecars; the store keeps bytes with a CRC32C checksum
// verified on every read.
package blockstore

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
)

// Errors returned by the store.
var (
	// ErrNotFound indicates the block is not stored here.
	ErrNotFound = errors.New("blockstore: block not found")
	// ErrCorrupt indicates a checksum mismatch on read.
	ErrCorrupt = errors.New("blockstore: block corrupt")
	// ErrExists indicates a Put for a block already stored.
	ErrExists = errors.New("blockstore: block already stored")
)

// Kind distinguishes data replicas from parity blocks.
type Kind int

const (
	// Data marks a replica of an original data block.
	Data Kind = iota + 1
	// Parity marks an erasure-coded parity block.
	Parity
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case Parity:
		return "parity"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Key identifies a stored block. Parity blocks are keyed by (stripe,
// index) composed by the caller into the ID space it manages.
type Key struct {
	ID   int64
	Kind Kind
}

// String renders the key.
func (k Key) String() string { return fmt.Sprintf("%s/%d", k.Kind, k.ID) }

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

type entry struct {
	data []byte
	sum  uint32
}

// Store is a thread-safe in-memory block store.
type Store struct {
	mu      sync.RWMutex
	entries map[Key]entry
	bytes   int64
}

// New returns an empty store.
func New() *Store {
	return &Store{entries: make(map[Key]entry)}
}

// Put stores a copy of data under key. It returns ErrExists if the key is
// already present.
func (s *Store) Put(key Key, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[key]; ok {
		return fmt.Errorf("%w: %s", ErrExists, key)
	}
	cp := append([]byte(nil), data...)
	s.entries[key] = entry{data: cp, sum: crc32.Checksum(cp, castagnoli)}
	s.bytes += int64(len(cp))
	return nil
}

// Get returns a copy of the block, verifying its checksum.
func (s *Store) Get(key Key) ([]byte, error) {
	s.mu.RLock()
	e, ok := s.entries[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if crc32.Checksum(e.data, castagnoli) != e.sum {
		return nil, fmt.Errorf("%w: %s", ErrCorrupt, key)
	}
	return append([]byte(nil), e.data...), nil
}

// GetInto copies the block into dst, verifying the checksum first. dst must
// be exactly the stored block's length; a mismatch is an error so pooled
// callers notice stale buffer sizes instead of silently truncating. It is
// the allocation-free counterpart of Get.
func (s *Store) GetInto(key Key, dst []byte) error {
	s.mu.RLock()
	e, ok := s.entries[key]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if crc32.Checksum(e.data, castagnoli) != e.sum {
		return fmt.Errorf("%w: %s", ErrCorrupt, key)
	}
	if len(dst) != len(e.data) {
		return fmt.Errorf("blockstore: %s is %d bytes, destination buffer %d", key, len(e.data), len(dst))
	}
	copy(dst, e.data)
	return nil
}

// Has reports whether the block is stored.
func (s *Store) Has(key Key) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.entries[key]
	return ok
}

// Delete removes the block. It returns ErrNotFound if absent.
func (s *Store) Delete(key Key) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	delete(s.entries, key)
	s.bytes -= int64(len(e.data))
	return nil
}

// Corrupt flips a bit of the stored block, for failure-injection tests.
// It returns ErrNotFound if absent.
func (s *Store) Corrupt(key Key) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if len(e.data) > 0 {
		e.data[0] ^= 0x01
	}
	return nil
}

// Len returns the number of stored blocks.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Bytes returns the total stored payload size.
func (s *Store) Bytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Keys returns all stored keys sorted by kind then ID.
func (s *Store) Keys() []Key {
	s.mu.RLock()
	keys := make([]Key, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	s.mu.RUnlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Kind != keys[j].Kind {
			return keys[i].Kind < keys[j].Kind
		}
		return keys[i].ID < keys[j].ID
	})
	return keys
}

// Clear removes every block.
func (s *Store) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = make(map[Key]entry)
	s.bytes = 0
}
