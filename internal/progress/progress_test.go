package progress

import (
	"testing"
	"time"

	"ear/internal/events"
	"ear/internal/events/audit"
	"ear/internal/telemetry"
	"ear/internal/topology"
)

// publishBlock allocates and commits one block with the given replica set.
func publishBlock(j *events.Journal, id topology.BlockID, size int64, nodes ...topology.NodeID) {
	ev := events.New(events.BlockAllocated, "namenode")
	ev.Block = id
	ev.Bytes = size
	ev.Nodes = nodes
	j.Publish(ev)
	cv := events.New(events.BlockCommitted, "namenode")
	cv.Block = id
	cv.Nodes = nodes
	j.Publish(cv)
}

func groupStripe(j *events.Journal, id topology.StripeID, rack topology.RackID, blocks ...topology.BlockID) {
	ev := events.New(events.StripeGrouped, "namenode")
	ev.Stripe = id
	ev.Rack = rack
	ev.Blocks = blocks
	j.Publish(ev)
}

func encodeStripe(j *events.Journal, id topology.StripeID, parity ...topology.NodeID) {
	sv := events.New(events.StripeEncodeStarted, "raidnode")
	sv.Stripe = id
	j.Publish(sv)
	ev := events.New(events.StripeEncoded, "raidnode")
	ev.Stripe = id
	ev.Nodes = parity
	j.Publish(ev)
}

func TestLifecycleBacklogAndCurve(t *testing.T) {
	j := events.NewJournal(0)
	tr := New(Config{Replicas: 3, Policy: "ear"})
	defer tr.Attach(j)()

	const stripes, k = 4, 2
	const size = int64(1 << 20)
	var id topology.BlockID
	for s := 0; s < stripes; s++ {
		members := make([]topology.BlockID, 0, k)
		for b := 0; b < k; b++ {
			publishBlock(j, id, size, 0, 1, 2)
			members = append(members, id)
			id++
		}
		groupStripe(j, topology.StripeID(s), 0, members...)
	}

	rep := tr.Report()
	if rep.TotalStripes != stripes || rep.BacklogStripes != stripes {
		t.Fatalf("pre-encode: total=%d backlog=%d, want %d/%d", rep.TotalStripes, rep.BacklogStripes, stripes, stripes)
	}
	if rep.TotalBytes != int64(stripes*k)*size || rep.BacklogBytes != rep.TotalBytes {
		t.Fatalf("pre-encode bytes: total=%d backlog=%d", rep.TotalBytes, rep.BacklogBytes)
	}
	if rep.FractionEncoded != 0 {
		t.Fatalf("fraction = %v, want 0", rep.FractionEncoded)
	}

	for s := 0; s < stripes; s++ {
		encodeStripe(j, topology.StripeID(s), 10, 11)
	}

	rep = tr.Report()
	if rep.EncodedStripes != stripes || rep.BacklogStripes != 0 || rep.BacklogBytes != 0 {
		t.Fatalf("post-encode: encoded=%d backlog=%d/%d", rep.EncodedStripes, rep.BacklogStripes, rep.BacklogBytes)
	}
	if rep.FractionEncoded != 1 {
		t.Fatalf("fraction = %v, want 1", rep.FractionEncoded)
	}
	if rep.ETASeconds != 0 {
		t.Fatalf("ETA with empty backlog = %v, want 0", rep.ETASeconds)
	}
	if len(rep.Curve) == 0 {
		t.Fatal("no curve points recorded")
	}
	last := rep.Curve[len(rep.Curve)-1]
	if last.Fraction != 1 || last.EncodedStripes != stripes {
		t.Fatalf("last curve point = %+v", last)
	}
	if rep.BlocksAtRisk != 0 || len(rep.ExposureWindows) != 0 {
		t.Fatalf("clean run reported exposures: %d open, %d windows", rep.BlocksAtRisk, len(rep.ExposureWindows))
	}
}

// TestExposureMatchesAuditor drives replica loss and repair (pre-encode)
// and a post-encode partial delete through one journal feeding both the
// auditor and the tracker, and asserts the tracker's exposure windows have
// exactly the auditor's violation windows (same opening and resolving
// sequence numbers).
func TestExposureMatchesAuditor(t *testing.T) {
	top, err := topology.New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	j := events.NewJournal(0)
	aud := audit.New(top, audit.Config{Replicas: 3})
	defer aud.Attach(j)()
	tr := New(Config{Replicas: 3, Policy: "ear"})
	defer tr.Attach(j)()

	// Pre-encode replica loss: block 0 drops to 2 of 3 replicas, then a
	// repair restores it.
	publishBlock(j, 0, 1<<20, 0, 2, 4)
	del := events.New(events.ReplicaDeleted, "datanode")
	del.Block = 0
	del.Node = 4
	j.Publish(del)
	rep := events.New(events.RepairFinished, "raidnode")
	rep.Block = 0
	rep.Node = 5
	j.Publish(rep)

	// Post-encode partial delete: both members encoded down to one replica,
	// then block 2 loses its last replica and is repaired.
	publishBlock(j, 1, 1<<20, 0, 2, 4)
	publishBlock(j, 2, 1<<20, 1, 3, 5)
	groupStripe(j, 0, 0, 1, 2)
	encodeStripe(j, 0, 1)
	for _, n := range []topology.NodeID{2, 4} {
		d := events.New(events.ReplicaDeleted, "raidnode")
		d.Block = 1
		d.Node = n
		j.Publish(d)
	}
	for _, n := range []topology.NodeID{3, 5} {
		d := events.New(events.ReplicaDeleted, "raidnode")
		d.Block = 2
		d.Node = n
		j.Publish(d)
	}
	// Block 2 now has zero replicas in an encoded stripe: partial-delete.
	lost := events.New(events.ReplicaDeleted, "datanode")
	lost.Block = 2
	lost.Node = 1
	j.Publish(lost)
	fix := events.New(events.RepairFinished, "raidnode")
	fix.Block = 2
	fix.Node = 1
	j.Publish(fix)

	ar := aud.Report()
	pr := tr.Report()

	// Collect the auditor's replica-count and partial-delete windows.
	type window struct {
		inv              string
		opened, resolved uint64
	}
	var want []window
	for _, v := range append(append([]audit.Violation(nil), ar.Transient...), ar.Ongoing...) {
		if v.Invariant == audit.InvReplicaCount || v.Invariant == audit.InvPartialDelete {
			want = append(want, window{string(v.Invariant), v.OpenedSeq, v.ResolvedSeq})
		}
	}
	if len(want) != 2 {
		t.Fatalf("auditor recorded %d relevant violations, want 2: %+v", len(want), ar)
	}
	var got []window
	for _, w := range pr.ExposureWindows {
		got = append(got, window{w.Invariant, w.OpenedSeq, w.ResolvedSeq})
	}
	if len(got) != len(want) {
		t.Fatalf("tracker windows %+v, auditor %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("window %d: tracker %+v != auditor %+v", i, got[i], want[i])
		}
	}
	if pr.BlocksAtRisk != 0 {
		t.Fatalf("blocks at risk after repair = %d, want 0", pr.BlocksAtRisk)
	}
	for _, w := range pr.ExposureWindows {
		if !w.Resolved() || w.Seconds < 0 {
			t.Fatalf("window not cleanly resolved: %+v", w)
		}
	}
}

// TestRecoveryBackfillSuppressed: stripes encoded during the PR-7
// recovered-state backfill count toward progress but must not produce
// throughput samples or curve points (they are replay, not work).
func TestRecoveryBackfillSuppressed(t *testing.T) {
	j := events.NewJournal(0)
	tr := New(Config{Replicas: 2, Policy: "ear"})
	defer tr.Attach(j)()

	j.Publish(events.New(events.MetaRecoveryStarted, "namenode"))
	publishBlock(j, 0, 1<<20, 0, 1)
	publishBlock(j, 1, 1<<20, 2, 3)
	groupStripe(j, 0, 0, 0, 1)
	encodeStripe(j, 0, 4)
	j.Publish(events.New(events.MetaRecovered, "namenode"))

	rep := tr.Report()
	if !rep.Recovering == false { // recovered
		t.Fatalf("recovering = %v", rep.Recovering)
	}
	if rep.EncodedStripes != 1 || rep.FractionEncoded != 1 {
		t.Fatalf("backfilled encode not counted: %+v", rep)
	}
	if len(rep.Curve) != 0 {
		t.Fatalf("backfill produced %d curve points, want 0", len(rep.Curve))
	}
	if rep.BlocksAtRisk != 0 || len(rep.ExposureWindows) != 0 {
		t.Fatalf("backfill produced exposures: %+v", rep.ExposureWindows)
	}

	// Live work after recovery samples normally again.
	publishBlock(j, 2, 1<<20, 0, 1)
	publishBlock(j, 3, 1<<20, 2, 3)
	groupStripe(j, 1, 0, 2, 3)
	encodeStripe(j, 1, 5)
	rep = tr.Report()
	if len(rep.Curve) == 0 {
		t.Fatal("live encode after recovery produced no curve point")
	}
}

func TestTelemetryRegistration(t *testing.T) {
	j := events.NewJournal(0)
	tr := New(Config{Replicas: 2, Policy: "rr"})
	reg := telemetry.NewRegistry()
	tr.SetTelemetry(reg)
	defer tr.Attach(j)()

	publishBlock(j, 0, 1<<20, 0, 1)
	publishBlock(j, 1, 1<<20, 2, 3)
	groupStripe(j, 0, events.NoneRack, 0, 1)

	// Drop block 0 to one replica: at-risk gauge rises.
	del := events.New(events.ReplicaDeleted, "datanode")
	del.Block = 0
	del.Node = 1
	j.Publish(del)

	find := func(name string) telemetry.SeriesSnapshot {
		for _, fam := range reg.Snapshot() {
			if fam.Name == name {
				if len(fam.Series) != 1 {
					t.Fatalf("%s has %d series", name, len(fam.Series))
				}
				return fam.Series[0]
			}
		}
		t.Fatalf("family %s not registered", name)
		return telemetry.SeriesSnapshot{}
	}
	if v := find("hdfs_blocks_at_risk").Value; v != 1 {
		t.Fatalf("hdfs_blocks_at_risk = %v, want 1", v)
	}
	if v := find("hdfs_encode_backlog_stripes").Value; v != 1 {
		t.Fatalf("backlog stripes gauge = %v, want 1", v)
	}

	// Repair closes the window: histogram observes one exposure.
	fix := events.New(events.RepairFinished, "raidnode")
	fix.Block = 0
	fix.Node = 4
	j.Publish(fix)
	if v := find("hdfs_blocks_at_risk").Value; v != 0 {
		t.Fatalf("hdfs_blocks_at_risk after repair = %v, want 0", v)
	}
	if c := find("hdfs_exposure_seconds").Count; c != 1 {
		t.Fatalf("hdfs_exposure_seconds count = %d, want 1", c)
	}
}

// TestETAProjection feeds timed samples through the injected clock and
// checks the windowed rate projects over the backlog.
func TestETAProjection(t *testing.T) {
	tr := New(Config{Replicas: 2, Policy: "ear"})
	base := time.Unix(5000, 0)
	tr.now = func() time.Time { return base }
	tr.start = base

	j := events.NewJournal(0)
	defer tr.Attach(j)()

	const size = int64(1 << 20)
	for s := 0; s < 4; s++ {
		b0, b1 := topology.BlockID(2*s), topology.BlockID(2*s+1)
		publishBlock(j, b0, size, 0, 1)
		publishBlock(j, b1, size, 2, 3)
		groupStripe(j, topology.StripeID(s), 0, b0, b1)
	}
	// Encode two of four stripes one second apart; journal stamps Wall
	// itself, so adjust the sample timestamps via Observe directly instead:
	// simplest is to accept wall-stamped samples and only sanity-check sign.
	encodeStripe(j, 0, 4)
	encodeStripe(j, 1, 5)

	rep := tr.Report()
	if rep.BacklogStripes != 2 {
		t.Fatalf("backlog = %d, want 2", rep.BacklogStripes)
	}
	if rep.RateBytesPerSec < 0 {
		t.Fatalf("rate = %v", rep.RateBytesPerSec)
	}
	// Two samples land within microseconds; the rate may be enormous but
	// ETA must be finite and non-negative, or -1 when the rate collapsed
	// to zero.
	if rep.ETASeconds < -1 {
		t.Fatalf("eta = %v", rep.ETASeconds)
	}
}
