// Package progress watches the replication→erasure-coding transition
// through the cluster event journal and answers the two questions an
// operator of that transition actually asks: how far along is the encode
// backlog (and when will it finish), and how much data is currently below
// its target redundancy (and for how long has it been exposed).
//
// A Tracker subscribes to an events.Journal (the same attachment contract
// as the audit.Auditor: synchronous, O(1)-ish per event, never calls back
// into the journal) and maintains a per-stripe lifecycle state machine —
// allocated → grouped → encode-started → encoded → replica-cleaned — from
// which it derives:
//
//   - the encode backlog: stripes and bytes grouped but not yet encoded,
//   - a throughput-windowed ETA: encoded bytes/s over a trailing sample
//     window, projected over the remaining backlog,
//   - a progress curve (fraction encoded over time) for comparing policies
//     (EAR vs RR) run-to-run,
//   - a durability-exposure metric: blocks currently below target
//     redundancy, with the wall-clock window of every exposure — surfaced
//     as the hdfs_blocks_at_risk gauge and the hdfs_exposure_seconds
//     histogram.
//
// The at-risk state machine deliberately mirrors the auditor's
// replica-count and partial-delete invariants, transition for transition
// (same suspension rules while an encode is in flight, same event scoping),
// so every exposure window the tracker reports corresponds one-to-one to an
// auditor violation window — the integration tests assert the sequence
// numbers match exactly.
//
// Restarts are survived for free: the PR-7 metadata plane republishes the
// recovered layout (PublishRecoveredState) into the new process's journal
// before traffic flows, so a tracker attached at startup rebuilds its model
// from the backfill. Throughput samples and curve points are suppressed
// between MetaRecoveryStarted and MetaRecovered so the replayed encodes do
// not masquerade as instantaneous throughput.
package progress

import (
	"fmt"
	"sync"
	"time"

	"ear/internal/events"
	"ear/internal/telemetry"
	"ear/internal/topology"
)

// Config shapes the tracker.
type Config struct {
	// Replicas is the pre-encode replication factor r (the target
	// redundancy a committed, not-yet-encoded block must keep).
	Replicas int
	// Policy labels reports and metrics ("ear", "rr"); purely descriptive.
	Policy string
}

// Invariant names for risk windows, matching the auditor's.
const (
	RiskReplicaCount  = "replica-count"
	RiskPartialDelete = "partial-delete"
)

// RiskWindow is one durability exposure: the interval during which a block
// (or an encoded stripe's member) sat below its target redundancy. Sequence
// numbers match the auditor's violation windows for the same invariant.
type RiskWindow struct {
	Invariant string            `json:"invariant"`
	Stripe    topology.StripeID `json:"stripe"`
	Block     topology.BlockID  `json:"block"`
	OpenedSeq uint64            `json:"opened_seq"`
	// ResolvedSeq is 0 while the exposure is ongoing.
	ResolvedSeq  uint64    `json:"resolved_seq,omitempty"`
	OpenedWall   time.Time `json:"opened_wall"`
	ResolvedWall time.Time `json:"resolved_wall,omitempty"`
	// Seconds is the exposure duration (ongoing windows report the time
	// exposed so far, measured at report time).
	Seconds float64 `json:"seconds"`
}

// Resolved reports whether the exposure has closed.
func (w RiskWindow) Resolved() bool { return w.ResolvedSeq != 0 }

// CurvePoint is one sample of the progress curve.
type CurvePoint struct {
	// Seconds since the tracker started observing.
	Seconds float64 `json:"t"`
	// EncodedStripes / TotalStripes at the sample, and the fraction.
	EncodedStripes int     `json:"encoded"`
	TotalStripes   int     `json:"total"`
	Fraction       float64 `json:"fraction"`
	EncodedBytes   int64   `json:"encoded_bytes"`
}

// Report is the tracker's summary: the operator view behind earfsd
// /progress and eartestbed -progress.
type Report struct {
	Policy string `json:"policy"`
	Events uint64 `json:"events"`

	// Stripe lifecycle counts.
	TotalStripes    int `json:"total_stripes"`
	PendingStripes  int `json:"pending_stripes"`
	EncodingStripes int `json:"encoding_stripes"`
	EncodedStripes  int `json:"encoded_stripes"`

	// Backlog and completion.
	BacklogStripes  int     `json:"backlog_stripes"`
	BacklogBytes    int64   `json:"backlog_bytes"`
	TotalBytes      int64   `json:"total_bytes"`
	EncodedBytes    int64   `json:"encoded_bytes"`
	FractionEncoded float64 `json:"fraction_encoded"`

	// Throughput and projection. RateBytesPerSec is the trailing-window
	// encode rate; ETASeconds projects it over the backlog (0 when the
	// backlog is empty, +Inf encoded as -1 when no throughput has been
	// observed yet).
	RateBytesPerSec float64 `json:"rate_bytes_per_sec"`
	ETASeconds      float64 `json:"eta_seconds"`

	// Durability exposure.
	BlocksAtRisk    int          `json:"blocks_at_risk"`
	ExposureWindows []RiskWindow `json:"exposure_windows,omitempty"`
	// TotalExposureSeconds sums every closed window plus the age of open
	// ones.
	TotalExposureSeconds float64 `json:"total_exposure_seconds"`

	Curve []CurvePoint `json:"curve,omitempty"`

	// Recovering is true between MetaRecoveryStarted and MetaRecovered.
	Recovering bool `json:"recovering,omitempty"`
}

// blockState mirrors the auditor's per-block model (plus the size needed
// for byte-level backlog accounting).
type blockState struct {
	replicas  map[topology.NodeID]bool
	stripe    topology.StripeID
	size      int64
	committed bool
	aborted   bool
	encoded   bool
}

// stripeState mirrors the auditor's per-stripe model plus byte totals.
type stripeState struct {
	blocks   []topology.BlockID
	bytes    int64
	encoding bool
	encoded  bool
}

// throughput sampling geometry: rate over the trailing rateWindow of
// samples recorded at each StripeEncoded.
const (
	maxSamples     = 64
	rateWindowSecs = 30.0
	maxCurvePoints = 2048
)

// sample is one (time, cumulative encoded bytes) observation.
type sample struct {
	t     time.Time
	bytes int64
}

// Tracker consumes the event stream and maintains transition progress and
// durability-exposure state. All methods are safe for concurrent use;
// Attach subscribes it to a journal.
type Tracker struct {
	cfg Config

	mu     sync.Mutex
	start  time.Time
	events uint64

	blocks  map[topology.BlockID]*blockState
	stripes map[topology.StripeID]*stripeState
	// dead holds nodes currently marked dead: their replicas stay in the
	// block model (MarkAlive revives them) but count as unavailable for
	// every durability check, so a node death opens exposure windows that
	// repair (or revival) closes.
	dead map[topology.NodeID]bool

	totalStripes   int
	encodedStripes int
	totalBytes     int64
	encodedBytes   int64

	samples []sample // ring, newest last
	curve   []CurvePoint
	stride  int // curve decimation stride

	// open maps a risk key to its index in windows; closed windows keep
	// their slot (the auditor's open/all idiom).
	open    map[string]int
	windows []RiskWindow

	recovering bool

	now func() time.Time // injectable for tests

	// Telemetry handles, nil until SetTelemetry.
	mAtRisk   *telemetry.Metric
	mExposure *telemetry.Metric
	mBacklogS *telemetry.Metric
	mBacklogB *telemetry.Metric
	mFraction *telemetry.Metric
}

// New builds a tracker.
func New(cfg Config) *Tracker {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	if cfg.Policy == "" {
		cfg.Policy = "unknown"
	}
	t := &Tracker{
		cfg:     cfg,
		blocks:  make(map[topology.BlockID]*blockState),
		stripes: make(map[topology.StripeID]*stripeState),
		dead:    make(map[topology.NodeID]bool),
		open:    make(map[string]int),
		stride:  1,
		now:     time.Now,
	}
	t.start = t.now()
	return t
}

// exposureBuckets bound the hdfs_exposure_seconds histogram: exposure in a
// shaped testbed run is milliseconds-to-seconds; in a real transition it
// can be minutes.
var exposureBuckets = []float64{.001, .005, .01, .05, .1, .5, 1, 5, 10, 30, 60, 300, 1800}

// SetTelemetry registers the tracker's metric families on reg and keeps
// the handles: hdfs_blocks_at_risk, hdfs_exposure_seconds,
// hdfs_encode_backlog_stripes, hdfs_encode_backlog_bytes,
// hdfs_encoded_fraction — all labeled by placement policy.
func (t *Tracker) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.mAtRisk = reg.Gauge("hdfs_blocks_at_risk",
		"Blocks currently below their target redundancy.", "policy").With(t.cfg.Policy)
	t.mExposure = reg.Histogram("hdfs_exposure_seconds",
		"Duration blocks spent below target redundancy (observed when the exposure closes).",
		exposureBuckets, "policy").With(t.cfg.Policy)
	t.mBacklogS = reg.Gauge("hdfs_encode_backlog_stripes",
		"Stripes grouped but not yet encoded.", "policy").With(t.cfg.Policy)
	t.mBacklogB = reg.Gauge("hdfs_encode_backlog_bytes",
		"Bytes grouped but not yet encoded.", "policy").With(t.cfg.Policy)
	t.mFraction = reg.Gauge("hdfs_encoded_fraction",
		"Fraction of grouped stripes already encoded.", "policy").With(t.cfg.Policy)
}

// Attach subscribes the tracker to the journal, returning the cancel
// function. Attach before traffic flows (and before the recovered-state
// backfill): events already rotated out of the ring are not replayed.
func (t *Tracker) Attach(j *events.Journal) (cancel func()) {
	return j.Subscribe(t.Observe)
}

// Observe folds one event into the model. It is the subscriber the journal
// calls under its lock; tests may also feed events directly.
func (t *Tracker) Observe(e events.Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events++

	switch e.Type {
	case events.BlockAllocated:
		b := t.block(e.Block)
		if e.Bytes > 0 {
			b.size = e.Bytes
		}
		for _, n := range e.Nodes {
			b.replicas[n] = true
		}
	case events.ReplicaWritten:
		t.block(e.Block).replicas[e.Node] = true
	case events.BlockCommitted:
		b := t.block(e.Block)
		b.committed = true
		if len(e.Nodes) > 0 {
			b.replicas = make(map[topology.NodeID]bool, len(e.Nodes))
			for _, n := range e.Nodes {
				b.replicas[n] = true
			}
		}
	case events.BlockAborted:
		b := t.block(e.Block)
		b.aborted = true
		b.replicas = make(map[topology.NodeID]bool)
	case events.StripeGrouped:
		s := t.stripe(e.Stripe)
		if len(s.blocks) == 0 {
			t.totalStripes++
		} else {
			t.totalBytes -= s.bytes // regroup: replace, don't double-count
		}
		s.blocks = append([]topology.BlockID(nil), e.Blocks...)
		s.bytes = 0
		for _, id := range e.Blocks {
			b := t.block(id)
			b.stripe = e.Stripe
			s.bytes += b.size
		}
		t.totalBytes += s.bytes
	case events.StripeEncodeStarted:
		t.stripe(e.Stripe).encoding = true
	case events.StripeEncoded:
		s := t.stripe(e.Stripe)
		s.encoding = false
		if !s.encoded {
			s.encoded = true
			t.encodedStripes++
			t.encodedBytes += s.bytes
			if !t.recovering {
				t.recordEncodeLocked(e.Wall)
			}
		}
		for _, id := range s.blocks {
			t.block(id).encoded = true
		}
	case events.ReplicaDeleted:
		delete(t.block(e.Block).replicas, e.Node)
	case events.ReplicaRelocated:
		if e.Detail != "parity" {
			b := t.block(e.Block)
			delete(b.replicas, e.Node)
			b.replicas[e.Peer] = true
		}
	case events.RepairFinished:
		// Parity repairs publish with Block unset (Detail "parity"): they
		// restore stripe redundancy but are not a block replica.
		if e.Block != events.NoneBlock {
			t.block(e.Block).replicas[e.Node] = true
		}
	case events.NodeDead:
		t.dead[e.Node] = true
		t.recheckAllLocked(e)
	case events.NodeAlive:
		delete(t.dead, e.Node)
		t.recheckAllLocked(e)
	case events.MetaRecoveryStarted:
		t.recovering = true
	case events.MetaRecovered:
		t.recovering = false
	}

	t.checkRiskLocked(e)
	t.updateGaugesLocked()
}

// block returns (creating) the model entry for id.
func (t *Tracker) block(id topology.BlockID) *blockState {
	b, ok := t.blocks[id]
	if !ok {
		b = &blockState{replicas: make(map[topology.NodeID]bool), stripe: events.NoneStripe}
		t.blocks[id] = b
	}
	return b
}

// stripe returns (creating) the model entry for id.
func (t *Tracker) stripe(id topology.StripeID) *stripeState {
	s, ok := t.stripes[id]
	if !ok {
		s = &stripeState{}
		t.stripes[id] = s
	}
	return s
}

// recordEncodeLocked adds a throughput sample and a curve point for one
// newly encoded stripe.
func (t *Tracker) recordEncodeLocked(wall time.Time) {
	if wall.IsZero() {
		wall = t.now()
	}
	t.samples = append(t.samples, sample{t: wall, bytes: t.encodedBytes})
	if len(t.samples) > maxSamples {
		t.samples = t.samples[len(t.samples)-maxSamples:]
	}
	if t.encodedStripes%t.stride != 0 && t.encodedStripes != t.totalStripes {
		return
	}
	if len(t.curve) >= maxCurvePoints {
		kept := t.curve[:0]
		for i := 0; i < len(t.curve); i += 2 {
			kept = append(kept, t.curve[i])
		}
		t.curve = kept
		t.stride *= 2
	}
	frac := 0.0
	if t.totalStripes > 0 {
		frac = float64(t.encodedStripes) / float64(t.totalStripes)
	}
	t.curve = append(t.curve, CurvePoint{
		Seconds:        wall.Sub(t.start).Seconds(),
		EncodedStripes: t.encodedStripes,
		TotalStripes:   t.totalStripes,
		Fraction:       frac,
		EncodedBytes:   t.encodedBytes,
	})
}

// liveCountLocked counts the block's replicas on nodes not currently dead.
func (t *Tracker) liveCountLocked(b *blockState) int {
	n := 0
	for node := range b.replicas {
		if !t.dead[node] {
			n++
		}
	}
	return n
}

// recheckAllLocked re-evaluates every tracked durability exposure — the
// liveness transitions affect every block a node hosts, so the per-event
// scoping of checkRiskLocked is not enough.
func (t *Tracker) recheckAllLocked(e events.Event) {
	for id := range t.blocks {
		t.checkReplicaRiskLocked(id, e)
	}
	for sid, s := range t.stripes {
		t.checkPartialDeleteRiskLocked(sid, s, e)
	}
}

// checkRiskLocked re-evaluates the durability exposures the event can
// affect, with exactly the auditor's scoping: the event's block first, then
// every member of the event's (or the block's) stripe.
func (t *Tracker) checkRiskLocked(e events.Event) {
	sid := e.Stripe
	if sid == events.NoneStripe && e.Block != events.NoneBlock {
		if b, ok := t.blocks[e.Block]; ok {
			sid = b.stripe
		}
	}
	if e.Block != events.NoneBlock {
		t.checkReplicaRiskLocked(e.Block, e)
	}
	if sid == events.NoneStripe {
		return
	}
	s, ok := t.stripes[sid]
	if !ok {
		return
	}
	for _, id := range s.blocks {
		t.checkReplicaRiskLocked(id, e)
	}
	t.checkPartialDeleteRiskLocked(sid, s, e)
}

// checkReplicaRiskLocked mirrors the auditor's replica-count invariant: a
// committed, pre-encode block keeps >= r replicas, the check suspended
// while its stripe encodes and once it is encoded.
func (t *Tracker) checkReplicaRiskLocked(id topology.BlockID, e events.Event) {
	b, ok := t.blocks[id]
	if !ok {
		return
	}
	key := fmt.Sprintf("%s/b%d", RiskReplicaCount, id)
	suspended := b.aborted || b.encoded || !b.committed
	if s, ok := t.stripes[b.stripe]; ok && (s.encoding || s.encoded) {
		suspended = true
	}
	atRisk := !suspended && t.liveCountLocked(b) < t.cfg.Replicas
	t.setRiskLocked(key, atRisk, e, RiskWindow{
		Invariant: RiskReplicaCount,
		Stripe:    b.stripe,
		Block:     id,
	})
}

// checkPartialDeleteRiskLocked mirrors the auditor's partial-delete
// invariant: post-encode, every non-aborted member keeps >= 1 replica.
func (t *Tracker) checkPartialDeleteRiskLocked(sid topology.StripeID, s *stripeState, e events.Event) {
	key := fmt.Sprintf("%s/s%d", RiskPartialDelete, sid)
	lost := events.NoneBlock
	if s.encoded {
		for _, id := range s.blocks {
			if b, ok := t.blocks[id]; ok && !b.aborted && t.liveCountLocked(b) == 0 {
				lost = id
				break
			}
		}
	}
	t.setRiskLocked(key, lost != events.NoneBlock, e, RiskWindow{
		Invariant: RiskPartialDelete,
		Stripe:    sid,
		Block:     lost,
	})
}

// setRiskLocked opens or closes the exposure window identified by key (the
// auditor's setState idiom), observing the closed duration into the
// exposure histogram.
func (t *Tracker) setRiskLocked(key string, atRisk bool, e events.Event, proto RiskWindow) {
	idx, isOpen := t.open[key]
	switch {
	case atRisk && !isOpen:
		proto.OpenedSeq = e.Seq
		proto.OpenedWall = e.Wall
		if proto.OpenedWall.IsZero() {
			proto.OpenedWall = t.now()
		}
		t.windows = append(t.windows, proto)
		t.open[key] = len(t.windows) - 1
	case !atRisk && isOpen:
		w := &t.windows[idx]
		w.ResolvedSeq = e.Seq
		w.ResolvedWall = e.Wall
		if w.ResolvedWall.IsZero() {
			w.ResolvedWall = t.now()
		}
		w.Seconds = w.ResolvedWall.Sub(w.OpenedWall).Seconds()
		if t.mExposure != nil {
			t.mExposure.Observe(w.Seconds)
		}
		delete(t.open, key)
	}
}

// updateGaugesLocked refreshes the registered gauges.
func (t *Tracker) updateGaugesLocked() {
	if t.mAtRisk == nil {
		return
	}
	t.mAtRisk.Set(float64(len(t.open)))
	t.mBacklogS.Set(float64(t.totalStripes - t.encodedStripes))
	t.mBacklogB.Set(float64(t.totalBytes - t.encodedBytes))
	if t.totalStripes > 0 {
		t.mFraction.Set(float64(t.encodedStripes) / float64(t.totalStripes))
	}
}

// rateLocked computes the trailing-window encode throughput in bytes/s.
func (t *Tracker) rateLocked() float64 {
	if len(t.samples) < 2 {
		// One (or zero) samples: fall back to lifetime average.
		if t.encodedBytes > 0 {
			if el := t.now().Sub(t.start).Seconds(); el > 0 {
				return float64(t.encodedBytes) / el
			}
		}
		return 0
	}
	last := t.samples[len(t.samples)-1]
	first := t.samples[0]
	for _, s := range t.samples {
		if last.t.Sub(s.t).Seconds() <= rateWindowSecs {
			first = s
			break
		}
	}
	dt := last.t.Sub(first.t).Seconds()
	if dt <= 0 {
		return 0
	}
	return float64(last.bytes-first.bytes) / dt
}

// Report summarizes the transition so far. Exposure windows are returned
// in opening order; ongoing windows report their age at call time.
func (t *Tracker) Report() Report {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()

	r := Report{
		Policy:         t.cfg.Policy,
		Events:         t.events,
		TotalStripes:   t.totalStripes,
		EncodedStripes: t.encodedStripes,
		TotalBytes:     t.totalBytes,
		EncodedBytes:   t.encodedBytes,
		Recovering:     t.recovering,
	}
	for _, s := range t.stripes {
		if s.encoding && !s.encoded {
			r.EncodingStripes++
		}
	}
	r.PendingStripes = t.totalStripes - t.encodedStripes - r.EncodingStripes
	r.BacklogStripes = t.totalStripes - t.encodedStripes
	r.BacklogBytes = t.totalBytes - t.encodedBytes
	if t.totalStripes > 0 {
		r.FractionEncoded = float64(t.encodedStripes) / float64(t.totalStripes)
	}

	r.RateBytesPerSec = t.rateLocked()
	switch {
	case r.BacklogBytes <= 0:
		r.ETASeconds = 0
	case r.RateBytesPerSec > 0:
		r.ETASeconds = float64(r.BacklogBytes) / r.RateBytesPerSec
	default:
		r.ETASeconds = -1 // no throughput observed yet: unknown
	}

	r.BlocksAtRisk = len(t.open)
	r.ExposureWindows = make([]RiskWindow, len(t.windows))
	copy(r.ExposureWindows, t.windows)
	for i := range r.ExposureWindows {
		w := &r.ExposureWindows[i]
		if !w.Resolved() {
			w.Seconds = now.Sub(w.OpenedWall).Seconds()
		}
		r.TotalExposureSeconds += w.Seconds
	}
	r.Curve = append([]CurvePoint(nil), t.curve...)
	return r
}
