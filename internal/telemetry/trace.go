package telemetry

import (
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"time"
)

// Tracer records spans. A nil *Tracer is a valid no-op sink: every Start,
// Child, Arg, and End call on nil receivers does nothing, so instrumented
// code never needs nil checks. All methods are safe for concurrent use.
type Tracer struct {
	mu     sync.Mutex
	epoch  time.Time
	spans  []*Span
	nextID int64
}

// NewTracer creates a tracer whose timestamps are relative to now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Span is one timed operation. Spans form a tree through parent links;
// concurrent siblings can be placed on their own display track with
// ChildTrack. A nil *Span is a valid no-op.
type Span struct {
	tr     *Tracer
	id     int64
	parent int64 // 0 for roots
	track  int64 // Chrome trace tid: spans sharing a track nest visually
	name   string
	start  time.Time

	mu    sync.Mutex
	dur   time.Duration
	ended bool
	args  map[string]string
}

// newSpan allocates and registers a span.
func (t *Tracer) newSpan(name string, parent, track int64) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	s := &Span{tr: t, id: t.nextID, parent: parent, track: track, name: name, start: time.Now()}
	if track <= 0 {
		s.track = s.id
	}
	t.spans = append(t.spans, s)
	return s
}

// Start opens a root span on its own track. Returns nil when the tracer is
// nil.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, 0, 0)
}

// Child opens a sub-span on the same display track as its parent (rendered
// nested in a trace viewer). Returns nil when the span is nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(name, s.id, s.track)
}

// ChildTrack opens a sub-span on a fresh display track, for children that
// run concurrently with their siblings (e.g. parallel map tasks). Returns
// nil when the span is nil.
func (s *Span) ChildTrack(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(name, s.id, -1) // -1: force a new track
}

// Arg attaches a key/value annotation, returning the span for chaining.
func (s *Span) Arg(key, value string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.args == nil {
		s.args = make(map[string]string)
	}
	s.args[key] = value
	s.mu.Unlock()
	return s
}

// End closes the span. Ending twice keeps the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// SpanSnapshot is the exported state of one span.
type SpanSnapshot struct {
	ID     int64
	Parent int64
	Name   string
	Start  time.Duration // offset from the tracer epoch
	Dur    time.Duration
	Ended  bool
	Args   map[string]string
}

// Spans returns every recorded span in start order.
func (t *Tracer) Spans() []SpanSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	epoch := t.epoch
	t.mu.Unlock()
	out := make([]SpanSnapshot, len(spans))
	for i, s := range spans {
		s.mu.Lock()
		out[i] = SpanSnapshot{
			ID:     s.id,
			Parent: s.parent,
			Name:   s.name,
			Start:  s.start.Sub(epoch),
			Dur:    s.dur,
			Ended:  s.ended,
		}
		if len(s.args) > 0 {
			out[i].Args = make(map[string]string, len(s.args))
			for k, v := range s.args {
				out[i].Args[k] = v
			}
		}
		s.mu.Unlock()
	}
	return out
}

// chromeEvent is one entry of the Chrome trace event format ("X" complete
// events; see the chrome://tracing Trace Event Format spec).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds since epoch
	Dur  float64           `json:"dur"` // microseconds
	Pid  int64             `json:"pid"`
	Tid  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders every ended span as a Chrome trace event array,
// loadable by chrome://tracing and Perfetto. Unended spans are emitted with
// the duration observed so far. Span identity and parent links travel in
// the args ("span", "parent").
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := w.Write([]byte("[]\n"))
		return err
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	epoch := t.epoch
	t.mu.Unlock()
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		s.mu.Lock()
		dur := s.dur
		if !s.ended {
			dur = time.Since(s.start)
		}
		ev := chromeEvent{
			Name: s.name,
			Cat:  "ear",
			Ph:   "X",
			Ts:   float64(s.start.Sub(epoch)) / float64(time.Microsecond),
			Dur:  float64(dur) / float64(time.Microsecond),
			Pid:  1,
			Tid:  s.track,
			Args: map[string]string{},
		}
		for k, v := range s.args {
			ev.Args[k] = v
		}
		s.mu.Unlock()
		ev.Args["span"] = strconv.FormatInt(s.id, 10)
		if s.parent != 0 {
			ev.Args["parent"] = strconv.FormatInt(s.parent, 10)
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
