package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records spans. A nil *Tracer is a valid no-op sink: every Start,
// Child, Arg, and End call on nil receivers does nothing, so instrumented
// code never needs nil checks. All methods are safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	epoch   time.Time
	spans   []*Span
	nextID  int64
	limit   int   // max retained spans, 0 = unlimited
	dropped int64 // spans discarded by the limit
}

// NewTracer creates a tracer whose timestamps are relative to now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// SetLimit caps how many spans the tracer retains (0 restores unlimited
// retention). Spans started past the cap are fully usable — children,
// args, trace identity — but are not recorded; Dropped counts them. A
// long-running daemon sets a limit so the trace buffer cannot grow without
// bound.
func (t *Tracer) SetLimit(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
}

// Dropped returns how many spans the retention limit discarded.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards every recorded span (and the dropped count), keeping the
// epoch, ID sequence, and limit. In-flight spans keep working; they are
// simply no longer exported.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = nil
	t.dropped = 0
	t.mu.Unlock()
}

// traceSeq feeds NewTraceID; traceBase folds in process start time so IDs
// from different processes (client and server of one RPC) do not collide.
var (
	traceSeq  atomic.Uint64
	traceBase = uint64(time.Now().UnixNano())
)

// NewTraceID returns a fresh nonzero trace identifier: a splitmix64 hash of
// a process-wide counter and the process start time. Callers that have a
// Tracer get trace IDs implicitly from Start; NewTraceID exists for
// tracerless clients that still want their requests correlated end to end
// (the netcfs client stamps one per RPC even when no tracer is installed).
func NewTraceID() uint64 {
	for {
		x := traceBase + traceSeq.Add(1)*0x9E3779B97F4A7C15
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// SpanContext is the serializable identity of a span: the trace it belongs
// to and the span's ID within the tracer that recorded it. It is what
// crosses process boundaries (the netcfs protocol carries one per request)
// and what journal events store as their correlation key. The zero value
// means "untraced".
type SpanContext struct {
	Trace uint64
	Span  int64
}

// FormatTraceID renders a trace ID the way the Chrome-trace export and the
// admin endpoints do: 16 hex digits.
func FormatTraceID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ComponentArg is the span annotation naming the component that produced
// the span ("client", "namenode", "datanode", "raidnode", "rpc"). Traces
// spanning two or more distinct components are what MultiComponentTraces
// counts.
const ComponentArg = "component"

// Span is one timed operation. Spans form a tree through parent links;
// concurrent siblings can be placed on their own display track with
// ChildTrack. Every span belongs to a trace: roots started with Start get a
// fresh trace ID, children inherit their parent's, and StartRemote
// continues a trace that began in another process. A nil *Span is a valid
// no-op.
type Span struct {
	tr     *Tracer
	id     int64
	parent int64  // 0 for roots
	track  int64  // Chrome trace tid: spans sharing a track nest visually
	trace  uint64 // trace ID shared by the whole request tree
	remote int64  // parent span ID in the originating process (StartRemote)
	name   string
	start  time.Time

	mu    sync.Mutex
	dur   time.Duration
	ended bool
	args  map[string]string
}

// newSpan allocates and registers a span. All identity fields (id, parent,
// track, trace, name, start) are final once newSpan returns: concurrent
// readers obtain the *Span through a happens-before edge (the t.mu handoff
// or the channel/call that delivered the pointer), so only the mutable
// dur/ended/args state needs s.mu.
func (t *Tracer) newSpan(name string, parent, track int64, trace uint64, remote int64) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	s := &Span{
		tr: t, id: t.nextID, parent: parent, track: track,
		trace: trace, remote: remote, name: name, start: time.Now(),
	}
	if track <= 0 {
		s.track = s.id
	}
	if t.limit > 0 && len(t.spans) >= t.limit {
		t.dropped++
	} else {
		t.spans = append(t.spans, s)
	}
	return s
}

// Start opens a root span on its own track with a fresh trace ID. Returns
// nil when the tracer is nil.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, 0, 0, NewTraceID(), 0)
}

// StartRemote opens a root span continuing a trace that originated
// elsewhere (typically deserialized from a protocol header): the new span
// adopts sc.Trace — drawing a fresh trace ID when it is zero — and records
// sc.Span as its remote parent. Returns nil when the tracer is nil.
func (t *Tracer) StartRemote(name string, sc SpanContext) *Span {
	if t == nil {
		return nil
	}
	if sc.Trace == 0 {
		sc.Trace = NewTraceID()
	}
	return t.newSpan(name, 0, 0, sc.Trace, sc.Span)
}

// Child opens a sub-span on the same display track as its parent (rendered
// nested in a trace viewer), inheriting the parent's trace. Returns nil
// when the span is nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(name, s.id, s.track, s.trace, 0)
}

// ChildTrack opens a sub-span on a fresh display track, for children that
// run concurrently with their siblings (e.g. parallel map tasks). The child
// inherits the parent's trace. Returns nil when the span is nil.
func (s *Span) ChildTrack(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(name, s.id, -1, s.trace, 0) // -1: force a new track
}

// Context returns the span's serializable identity, zero for a nil span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.trace, Span: s.id}
}

// TraceID returns the span's trace ID, zero for a nil span.
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.trace
}

// Arg attaches a key/value annotation, returning the span for chaining.
func (s *Span) Arg(key, value string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.args == nil {
		s.args = make(map[string]string)
	}
	s.args[key] = value
	s.mu.Unlock()
	return s
}

// End closes the span. Ending twice keeps the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// spanKey carries the active span through a context.
type spanKey struct{}

// ContextWithSpan returns a context carrying the span, the propagation
// vehicle between components: the client data path attaches its operation
// span, and everything downstream — NameNode allocation, fabric streams,
// journal publishers — picks it up with SpanFromContext to join the same
// trace. Attaching a nil span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the span the context carries, nil (a valid no-op
// span) when there is none.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// TraceFromContext returns the trace ID of the context's span, zero when
// the context is untraced. Journal publishers use it to stamp events.
func TraceFromContext(ctx context.Context) uint64 {
	return SpanFromContext(ctx).TraceID()
}

// SpanSnapshot is the exported state of one span.
type SpanSnapshot struct {
	ID     int64
	Parent int64
	Trace  uint64
	// Remote is the originating process's parent span ID for spans started
	// with StartRemote, 0 otherwise.
	Remote int64
	Name   string
	Start  time.Duration // offset from the tracer epoch
	Dur    time.Duration
	Ended  bool
	Args   map[string]string
}

// Spans returns every recorded span in start order.
func (t *Tracer) Spans() []SpanSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	epoch := t.epoch
	t.mu.Unlock()
	out := make([]SpanSnapshot, len(spans))
	for i, s := range spans {
		s.mu.Lock()
		out[i] = SpanSnapshot{
			ID:     s.id,
			Parent: s.parent,
			Trace:  s.trace,
			Remote: s.remote,
			Name:   s.name,
			Start:  s.start.Sub(epoch),
			Dur:    s.dur,
			Ended:  s.ended,
		}
		if len(s.args) > 0 {
			out[i].Args = make(map[string]string, len(s.args))
			for k, v := range s.args {
				out[i].Args[k] = v
			}
		}
		s.mu.Unlock()
	}
	return out
}

// MultiComponentTraces counts the distinct traces among the snapshots whose
// spans carry two or more distinct ComponentArg annotations — the "did the
// trace actually cross a component boundary" check CI asserts on. Spans
// without a component annotation do not contribute.
func MultiComponentTraces(spans []SpanSnapshot) int {
	comps := make(map[uint64]map[string]bool)
	for _, s := range spans {
		if s.Trace == 0 {
			continue
		}
		c := s.Args[ComponentArg]
		if c == "" {
			continue
		}
		set := comps[s.Trace]
		if set == nil {
			set = make(map[string]bool)
			comps[s.Trace] = set
		}
		set[c] = true
	}
	n := 0
	for _, set := range comps {
		if len(set) >= 2 {
			n++
		}
	}
	return n
}

// chromeEvent is one entry of the Chrome trace event format ("X" complete
// events; see the chrome://tracing Trace Event Format spec).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds since epoch
	Dur  float64           `json:"dur"` // microseconds
	Pid  int64             `json:"pid"`
	Tid  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders every ended span as a Chrome trace event array,
// loadable by chrome://tracing and Perfetto. Unended spans are emitted with
// the duration observed so far. Span identity, parent links, and trace
// membership travel in the args ("span", "parent", "trace",
// "remote_parent"), so filtering a viewer on one trace ID isolates one
// end-to-end request.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := w.Write([]byte("[]\n"))
		return err
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	epoch := t.epoch
	t.mu.Unlock()
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		s.mu.Lock()
		dur := s.dur
		if !s.ended {
			dur = time.Since(s.start)
		}
		ev := chromeEvent{
			Name: s.name,
			Cat:  "ear",
			Ph:   "X",
			Ts:   float64(s.start.Sub(epoch)) / float64(time.Microsecond),
			Dur:  float64(dur) / float64(time.Microsecond),
			Pid:  1,
			Tid:  s.track,
			Args: map[string]string{},
		}
		for k, v := range s.args {
			ev.Args[k] = v
		}
		s.mu.Unlock()
		ev.Args["span"] = strconv.FormatInt(s.id, 10)
		if s.parent != 0 {
			ev.Args["parent"] = strconv.FormatInt(s.parent, 10)
		}
		if s.trace != 0 {
			ev.Args["trace"] = FormatTraceID(s.trace)
		}
		if s.remote != 0 {
			ev.Args["remote_parent"] = strconv.FormatInt(s.remote, 10)
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
