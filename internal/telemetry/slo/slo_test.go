package slo

import (
	"math"
	"testing"
	"time"

	"ear/internal/telemetry"
)

// stepTracker builds a one-objective tracker over the given histogram
// bounds, primed with one empty sample.
func stepTracker(t *testing.T, obj Objective, bounds []float64) (*Tracker, *telemetry.Metric) {
	t.Helper()
	reg := telemetry.NewRegistry()
	h := reg.Histogram(obj.Metric, "test latency", bounds).With()
	tr := NewTracker(reg, 100*time.Millisecond)
	if err := tr.Add(obj); err != nil {
		t.Fatalf("Add: %v", err)
	}
	tr.Sample() // prime: establishes the cumulative baseline
	return tr, h
}

func TestObjectiveValidation(t *testing.T) {
	tr := NewTracker(telemetry.NewRegistry(), time.Second)
	bad := []Objective{
		{Name: "no-metric", Quantile: 0.99, Threshold: 1, Window: time.Minute},
		{Name: "q0", Metric: "m", Quantile: 0, Threshold: 1, Window: time.Minute},
		{Name: "q1", Metric: "m", Quantile: 1, Threshold: 1, Window: time.Minute},
		{Name: "thr", Metric: "m", Quantile: 0.9, Threshold: 0, Window: time.Minute},
		{Name: "win", Metric: "m", Quantile: 0.9, Threshold: 1, Window: 0},
	}
	for _, obj := range bad {
		if err := tr.Add(obj); err == nil {
			t.Errorf("Add(%s): expected error", obj.Name)
		}
	}
	if err := tr.Add(Objective{Name: "ok", Metric: "m", Quantile: 0.99,
		Threshold: 0.1, Window: time.Minute}); err != nil {
		t.Errorf("Add(ok): %v", err)
	}
}

func TestEmptyWindowReport(t *testing.T) {
	obj := Objective{Name: "op", Metric: "op_seconds", Quantile: 0.99,
		Threshold: 0.5, Window: time.Second}
	tr, _ := stepTracker(t, obj, []float64{0.1, 1})
	st := tr.Report()[0]
	if st.Ops != 0 || st.Slow != 0 || st.BurnRate != 0 {
		t.Errorf("empty window: ops=%v slow=%v burn=%v, want zeros", st.Ops, st.Slow, st.BurnRate)
	}
	if !st.Met || st.BudgetRemaining != 1 {
		t.Errorf("empty window: met=%v budget=%v, want met with full budget", st.Met, st.BudgetRemaining)
	}
	if st.Filled {
		t.Error("window reported filled after one sample of ten")
	}
}

func TestBurnRateAndBudget(t *testing.T) {
	// q=0.9 allows 10% slow. Observe 100 ops, 20 of them slow: slow ratio
	// 0.2, burn rate 2.0, budget -1.
	obj := Objective{Name: "op", Metric: "op_seconds", Quantile: 0.9,
		Threshold: 1.0, Window: time.Second}
	tr, h := stepTracker(t, obj, []float64{1.0, 10.0})
	for i := 0; i < 80; i++ {
		h.Observe(0.5) // fast: at or below threshold
	}
	for i := 0; i < 20; i++ {
		h.Observe(5.0) // slow
	}
	tr.Sample()
	st := tr.Report()[0]
	if st.Ops != 100 {
		t.Fatalf("ops = %v, want 100", st.Ops)
	}
	if math.Abs(st.Slow-20) > 1e-9 {
		t.Errorf("slow = %v, want 20", st.Slow)
	}
	if math.Abs(st.BurnRate-2.0) > 1e-9 {
		t.Errorf("burn rate = %v, want 2.0", st.BurnRate)
	}
	if math.Abs(st.BudgetRemaining+1.0) > 1e-9 {
		t.Errorf("budget remaining = %v, want -1.0", st.BudgetRemaining)
	}
	if st.Met {
		t.Error("objective reported met at burn rate 2.0")
	}
}

func TestThresholdInterpolationWithinBucket(t *testing.T) {
	// All 100 ops land in the (1, 2] bucket; threshold 1.5 sits halfway, so
	// interpolation says half the bucket is fast.
	obj := Objective{Name: "op", Metric: "op_seconds", Quantile: 0.5,
		Threshold: 1.5, Window: time.Second}
	tr, h := stepTracker(t, obj, []float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(1.7)
	}
	tr.Sample()
	st := tr.Report()[0]
	if math.Abs(st.Slow-50) > 1e-9 {
		t.Errorf("interpolated slow = %v, want 50", st.Slow)
	}
	// Quantile estimate: median of mass uniformly spread over (1, 2] is 1.5.
	if math.Abs(st.QuantileEstimate-1.5) > 1e-9 {
		t.Errorf("quantile estimate = %v, want 1.5", st.QuantileEstimate)
	}
}

func TestOverflowBucketCountsSlow(t *testing.T) {
	// Ops beyond the highest finite bound have unknown latency and must
	// count as slow even when the threshold exceeds that bound.
	obj := Objective{Name: "op", Metric: "op_seconds", Quantile: 0.5,
		Threshold: 100, Window: time.Second}
	tr, h := stepTracker(t, obj, []float64{1, 2})
	for i := 0; i < 10; i++ {
		h.Observe(500) // overflow bucket
	}
	tr.Sample()
	st := tr.Report()[0]
	if st.Slow != 10 {
		t.Errorf("overflow slow = %v, want 10", st.Slow)
	}
}

func TestWindowSlidesOldSamplesOut(t *testing.T) {
	// Window = 3 intervals. A burst in interval 1 must leave the window
	// after three further samples.
	obj := Objective{Name: "op", Metric: "op_seconds", Quantile: 0.9,
		Threshold: 1.0, Window: 300 * time.Millisecond}
	tr, h := stepTracker(t, obj, []float64{1, 10})
	for i := 0; i < 30; i++ {
		h.Observe(5.0) // burst of slow ops
	}
	tr.Sample()
	if st := tr.Report()[0]; st.Ops != 30 || !st.Met == false && st.BurnRate <= 1 {
		if st.Ops != 30 {
			t.Fatalf("ops after burst = %v, want 30", st.Ops)
		}
	}
	tr.Sample()
	tr.Sample()
	if st := tr.Report()[0]; st.Ops != 30 {
		t.Errorf("burst still inside 3-slot window: ops = %v, want 30", st.Ops)
	}
	tr.Sample() // burst slot overwritten
	st := tr.Report()[0]
	if st.Ops != 0 {
		t.Errorf("burst should have slid out: ops = %v, want 0", st.Ops)
	}
	if !st.Met {
		t.Error("objective not met over an empty window")
	}
	if !st.Filled {
		t.Error("window not reported filled after slots+1 samples")
	}
}

func TestMissingFamilyThenAppearing(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := NewTracker(reg, 100*time.Millisecond)
	if err := tr.Add(Objective{Name: "op", Metric: "late_seconds",
		Quantile: 0.9, Threshold: 1, Window: time.Second}); err != nil {
		t.Fatal(err)
	}
	tr.Sample() // family does not exist yet
	if st := tr.Report()[0]; st.Ops != 0 {
		t.Fatalf("missing family: ops = %v, want 0", st.Ops)
	}
	h := reg.Histogram("late_seconds", "", []float64{1, 10}).With()
	h.Observe(0.5)
	tr.Sample() // first sight primes the baseline (the pre-registration op is history)
	h.Observe(0.5)
	h.Observe(0.5)
	tr.Sample()
	if st := tr.Report()[0]; st.Ops != 2 {
		t.Errorf("ops after family appeared = %v, want 2 (post-prime only)", st.Ops)
	}
}

func TestLabelSelectorSumsMatchingSeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	fam := reg.Histogram("rpc_seconds", "", []float64{1, 10}, "op")
	fast := fam.With("read")
	slow := fam.With("write")
	tr := NewTracker(reg, 100*time.Millisecond)
	if err := tr.Add(Objective{Name: "reads", Metric: "rpc_seconds",
		Labels:   map[string]string{"op": "read"},
		Quantile: 0.9, Threshold: 1, Window: time.Second}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Add(Objective{Name: "all", Metric: "rpc_seconds",
		Quantile: 0.9, Threshold: 1, Window: time.Second}); err != nil {
		t.Fatal(err)
	}
	tr.Sample()
	for i := 0; i < 4; i++ {
		fast.Observe(0.5)
	}
	for i := 0; i < 6; i++ {
		slow.Observe(5)
	}
	tr.Sample()
	rep := tr.Report()
	if rep[0].Ops != 4 {
		t.Errorf("label-selected ops = %v, want 4", rep[0].Ops)
	}
	if rep[0].Slow != 0 {
		t.Errorf("label-selected slow = %v, want 0", rep[0].Slow)
	}
	if rep[1].Ops != 10 || rep[1].Slow != 6 {
		t.Errorf("unselected ops/slow = %v/%v, want 10/6", rep[1].Ops, rep[1].Slow)
	}
}

func TestDefaultObjectivesCoverCoreOps(t *testing.T) {
	objs := DefaultObjectives(time.Minute)
	want := map[string]string{
		"AllocateBlock": "namenode_alloc_seconds",
		"WriteBlock":    "hdfs_client_write_seconds",
		"ReadBlock":     "hdfs_client_read_seconds",
		"EncodeStripe":  "raidnode_stripe_encode_seconds",
		"RepairBlock":   "hdfs_repair_seconds",
	}
	if len(objs) != len(want) {
		t.Fatalf("DefaultObjectives: %d objectives, want %d", len(objs), len(want))
	}
	reg := telemetry.NewRegistry()
	tr := NewTracker(reg, 100*time.Millisecond)
	for _, obj := range objs {
		metric, ok := want[obj.Name]
		if !ok {
			t.Errorf("unexpected objective %q", obj.Name)
			continue
		}
		if obj.Metric != metric {
			t.Errorf("%s metric = %q, want %q", obj.Name, obj.Metric, metric)
		}
		if obj.Window != time.Minute {
			t.Errorf("%s window = %v, want 1m", obj.Name, obj.Window)
		}
		if err := tr.Add(obj); err != nil {
			t.Errorf("Add(%s): %v", obj.Name, err)
		}
	}
}

func TestStartStopLoop(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("op_seconds", "", []float64{1}).With()
	tr := NewTracker(reg, 10*time.Millisecond)
	if err := tr.Add(Objective{Name: "op", Metric: "op_seconds",
		Quantile: 0.9, Threshold: 1, Window: 100 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	tr.Start()
	tr.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for {
		// Keep observing: the first tick only primes the baseline, so ops
		// must arrive between two later ticks to show up as a delta.
		h.Observe(0.5)
		if st := tr.Report()[0]; st.Ops > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background loop never sampled the observation")
		}
		time.Sleep(5 * time.Millisecond)
	}
	tr.Stop()
	tr.Stop() // idempotent
}
