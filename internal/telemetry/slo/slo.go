// Package slo turns the telemetry registry's latency histograms into
// service-level objectives: rolling-window error budgets and burn rates per
// operation.
//
// An Objective says "quantile q of <metric> over the last <window> must stay
// at or below <threshold>". The allowed slow fraction is therefore 1-q: a
// 99th-percentile objective tolerates 1% of operations over the threshold
// before the window's error budget is spent. A Tracker samples the
// cumulative histograms at a fixed interval, keeps one window's worth of
// per-interval deltas in a ring, and reports for each objective the windowed
// operation count, the (bucket-interpolated) slow count, the estimated
// quantile, and the burn rate — the slow fraction divided by the allowed
// fraction, so 1.0 means "spending budget exactly as fast as the objective
// allows" and anything sustained above 1.0 means the objective will be
// violated.
//
// The Tracker reads only public registry snapshots, so it works against any
// histogram family regardless of which subsystem owns it, and sampling cost
// is independent of operation rate. Sample is exported so tests (and callers
// with their own clocks) can step the window deterministically; Start runs
// the same step on a background ticker.
package slo

import (
	"fmt"
	"math"
	"sync"
	"time"

	"ear/internal/telemetry"
)

// Objective is one latency SLO over a histogram family.
type Objective struct {
	// Name labels the objective in reports ("WriteBlock").
	Name string `json:"name"`
	// Metric is the histogram family the objective reads
	// ("hdfs_client_write_seconds").
	Metric string `json:"metric"`
	// Labels optionally narrows the family to series whose labels include
	// every listed pair; matching series are summed. Empty matches all.
	Labels map[string]string `json:"labels,omitempty"`
	// Quantile is the target quantile q in (0, 1), e.g. 0.99. The allowed
	// slow fraction is 1-q.
	Quantile float64 `json:"quantile"`
	// Threshold is the latency bound, in the histogram's unit (seconds for
	// every *_seconds family).
	Threshold float64 `json:"threshold"`
	// Window is the rolling accounting window.
	Window time.Duration `json:"window"`
}

// Status is one objective's windowed accounting.
type Status struct {
	Objective
	// Ops is the number of operations observed in the window.
	Ops float64 `json:"ops"`
	// Slow is the estimated number of windowed operations over the
	// threshold (linear interpolation within the bucket containing it;
	// overflow-bucket operations always count as slow).
	Slow float64 `json:"slow"`
	// SlowRatio is Slow/Ops (0 for an empty window).
	SlowRatio float64 `json:"slow_ratio"`
	// QuantileEstimate is the interpolated q-quantile of the windowed
	// distribution (0 for an empty window).
	QuantileEstimate float64 `json:"quantile_estimate"`
	// BurnRate is SlowRatio/(1-q): the rate at which the error budget is
	// being spent, in budgets-per-window. Sustained > 1 violates the SLO.
	BurnRate float64 `json:"burn_rate"`
	// BudgetRemaining is 1 - BurnRate: the fraction of the window's error
	// budget left, negative once the budget is blown.
	BudgetRemaining float64 `json:"budget_remaining"`
	// Met reports whether the objective currently holds (BurnRate <= 1).
	Met bool `json:"met"`
	// Filled reports whether a full window of samples has accumulated;
	// until then the figures cover a shorter period.
	Filled bool `json:"filled"`
}

// slot is one sampling interval's histogram delta.
type slot struct {
	ops     float64
	buckets []float64 // cumulative per bound, same shape as the snapshot
}

// tracked is one objective plus its sampling state.
type tracked struct {
	obj    Objective
	slots  int
	ring   []slot
	next   int
	filled int

	primed  bool
	lastOps float64
	lastCum []float64
	bounds  []float64
}

// Tracker samples a registry and maintains rolling windows for a set of
// objectives. All methods are safe for concurrent use.
type Tracker struct {
	reg      *telemetry.Registry
	interval time.Duration

	mu   sync.Mutex
	objs []*tracked

	loopMu sync.Mutex
	stop   chan struct{}
	done   chan struct{}
}

// NewTracker creates a tracker sampling reg every interval (minimum 10ms;
// values below are raised to it).
func NewTracker(reg *telemetry.Registry, interval time.Duration) *Tracker {
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	return &Tracker{reg: reg, interval: interval}
}

// Interval returns the sampling interval.
func (t *Tracker) Interval() time.Duration { return t.interval }

// Add registers an objective. The window is divided into
// round(Window/interval) ring slots (minimum 1).
func (t *Tracker) Add(obj Objective) error {
	if obj.Metric == "" {
		return fmt.Errorf("slo: objective %q has no metric", obj.Name)
	}
	if obj.Quantile <= 0 || obj.Quantile >= 1 {
		return fmt.Errorf("slo: objective %q quantile %v outside (0,1)", obj.Name, obj.Quantile)
	}
	if obj.Threshold <= 0 {
		return fmt.Errorf("slo: objective %q threshold %v must be positive", obj.Name, obj.Threshold)
	}
	if obj.Window <= 0 {
		return fmt.Errorf("slo: objective %q window %v must be positive", obj.Name, obj.Window)
	}
	slots := int(math.Round(float64(obj.Window) / float64(t.interval)))
	if slots < 1 {
		slots = 1
	}
	t.mu.Lock()
	t.objs = append(t.objs, &tracked{obj: obj, slots: slots, ring: make([]slot, slots)})
	t.mu.Unlock()
	return nil
}

// Sample takes one sampling step: it reads the registry once and pushes each
// objective's histogram delta into its ring. Exported so tests can drive the
// window deterministically; Start calls it on a ticker.
func (t *Tracker) Sample() {
	snap := t.reg.Snapshot()
	byName := make(map[string]*telemetry.FamilySnapshot, len(snap))
	for i := range snap {
		byName[snap[i].Name] = &snap[i]
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tr := range t.objs {
		tr.sample(byName[tr.obj.Metric])
	}
}

// sample folds one snapshot of the objective's family into the ring.
func (tr *tracked) sample(fam *telemetry.FamilySnapshot) {
	ops, cum, bounds, ok := sumSeries(fam, tr.obj.Labels)
	if !ok {
		// Family absent or not a histogram: push an empty slot so time
		// still passes for the window, and re-prime when it appears.
		tr.primed = false
		tr.push(slot{})
		return
	}
	if !tr.primed || len(cum) != len(tr.lastCum) {
		// First sight (or shape change, e.g. re-registration): establish
		// the baseline; deltas start accumulating from the next sample.
		tr.primed = true
		tr.lastOps, tr.lastCum, tr.bounds = ops, cum, bounds
		tr.push(slot{})
		return
	}
	d := slot{ops: ops - tr.lastOps, buckets: make([]float64, len(cum))}
	for i := range cum {
		d.buckets[i] = cum[i] - tr.lastCum[i]
	}
	if d.ops < 0 {
		// Counter reset (registry swapped): drop the interval, re-prime.
		d = slot{}
	}
	tr.lastOps, tr.lastCum, tr.bounds = ops, cum, bounds
	tr.push(d)
}

func (tr *tracked) push(s slot) {
	tr.ring[tr.next] = s
	tr.next = (tr.next + 1) % tr.slots
	if tr.filled < tr.slots {
		tr.filled++
	}
}

// sumSeries sums the matching histogram series of a family: total count and
// cumulative bucket counts (as floats, ready for interpolation).
func sumSeries(fam *telemetry.FamilySnapshot, want map[string]string) (ops float64, cum []float64, bounds []float64, ok bool) {
	if fam == nil || fam.Kind != "histogram" {
		return 0, nil, nil, false
	}
	for _, s := range fam.Series {
		if len(s.Buckets) == 0 {
			continue
		}
		match := true
		for k, v := range want {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		if cum == nil {
			cum = make([]float64, len(s.Buckets))
			bounds = s.Bounds
		} else if len(s.Buckets) != len(cum) {
			continue // shape mismatch across series; skip
		}
		ops += float64(s.Count)
		for i, b := range s.Buckets {
			cum[i] += float64(b)
		}
	}
	return ops, cum, bounds, cum != nil
}

// Report returns the windowed status of every objective, in Add order.
func (t *Tracker) Report() []Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Status, 0, len(t.objs))
	for _, tr := range t.objs {
		out = append(out, tr.status())
	}
	return out
}

func (tr *tracked) status() Status {
	st := Status{Objective: tr.obj, Filled: tr.filled == tr.slots, Met: true}
	var win []float64
	for _, s := range tr.ring {
		st.Ops += s.ops
		if s.buckets == nil {
			continue
		}
		if win == nil {
			win = make([]float64, len(s.buckets))
		}
		if len(s.buckets) == len(win) {
			for i, b := range s.buckets {
				win[i] += b
			}
		}
	}
	if st.Ops <= 0 || win == nil {
		st.Ops = 0
		st.BudgetRemaining = 1
		return st
	}
	fast := countAtOrBelow(tr.bounds, win, tr.obj.Threshold)
	st.Slow = st.Ops - fast
	if st.Slow < 0 {
		st.Slow = 0
	}
	st.SlowRatio = st.Slow / st.Ops
	st.QuantileEstimate = quantile(tr.bounds, win, st.Ops, tr.obj.Quantile)
	st.BurnRate = st.SlowRatio / (1 - tr.obj.Quantile)
	st.BudgetRemaining = 1 - st.BurnRate
	st.Met = st.BurnRate <= 1
	return st
}

// countAtOrBelow estimates how many of the windowed operations finished at
// or below thr, interpolating linearly within the bucket containing it.
// Operations in the overflow (+Inf) bucket count as above any finite
// threshold: their latency is unknown, so the estimate stays conservative.
func countAtOrBelow(bounds, cum []float64, thr float64) float64 {
	prev, lo := 0.0, 0.0
	for i, b := range bounds {
		c := cum[i]
		if thr <= b {
			frac := 1.0
			if b > lo {
				frac = (thr - lo) / (b - lo)
			}
			return prev + (c-prev)*frac
		}
		prev, lo = c, b
	}
	return prev
}

// quantile estimates the q-quantile of the windowed distribution, mirroring
// the registry's interpolation: rank within the containing bucket, overflow
// mass reported as the highest finite bound.
func quantile(bounds, cum []float64, total, q float64) float64 {
	if total <= 0 || len(bounds) == 0 {
		return 0
	}
	rank := q * total
	prev, lo := 0.0, 0.0
	for i, b := range bounds {
		c := cum[i]
		if c >= rank && c > prev {
			return lo + (b-lo)*(rank-prev)/(c-prev)
		}
		prev, lo = c, b
	}
	return bounds[len(bounds)-1]
}

// Start launches the background sampling loop. Stop ends it; Start after
// Stop begins a fresh loop.
func (t *Tracker) Start() {
	t.loopMu.Lock()
	defer t.loopMu.Unlock()
	if t.stop != nil {
		return
	}
	t.stop = make(chan struct{})
	t.done = make(chan struct{})
	stop, done := t.stop, t.done
	go func() {
		defer close(done)
		tick := time.NewTicker(t.interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				t.Sample()
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the background loop and waits for it to exit. Safe to call
// without a prior Start.
func (t *Tracker) Stop() {
	t.loopMu.Lock()
	defer t.loopMu.Unlock()
	if t.stop == nil {
		return
	}
	close(t.stop)
	<-t.done
	t.stop, t.done = nil, nil
}

// DefaultObjectives returns the testbed's core-operation objectives over the
// given window: p99 bounds on block allocation, write, read, stripe encode,
// and repair. Thresholds suit the shaped-fabric testbed (64 MiB blocks over
// gigabit-class links); real deployments would tune them.
func DefaultObjectives(window time.Duration) []Objective {
	return []Objective{
		{Name: "AllocateBlock", Metric: "namenode_alloc_seconds",
			Quantile: 0.99, Threshold: 0.005, Window: window},
		{Name: "WriteBlock", Metric: "hdfs_client_write_seconds",
			Quantile: 0.99, Threshold: 8, Window: window},
		{Name: "ReadBlock", Metric: "hdfs_client_read_seconds",
			Quantile: 0.99, Threshold: 4, Window: window},
		{Name: "EncodeStripe", Metric: "raidnode_stripe_encode_seconds",
			Quantile: 0.95, Threshold: 30, Window: window},
		{Name: "RepairBlock", Metric: "hdfs_repair_seconds",
			Quantile: 0.95, Threshold: 20, Window: window},
	}
}
