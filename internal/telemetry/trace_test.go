package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	s := tr.Start("root")
	if s != nil {
		t.Fatal("nil tracer Start returned a span")
	}
	// Every operation on a nil span must be safe.
	s.Arg("k", "v").Child("c").End()
	s.ChildTrack("ct").End()
	s.End()
	if tr.Spans() != nil {
		t.Error("nil tracer has spans")
	}
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "[]" {
		t.Errorf("nil tracer trace = %q, want []", b.String())
	}
}

func TestSpanTreeAndChromeExport(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("encode-job").Arg("stripes", "3")
	sel := root.Child("stripe-selection")
	sel.End()
	task := root.ChildTrack("map-task")
	dl := task.Child("download")
	dl.End()
	task.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(spans))
	}
	if spans[0].Parent != 0 || spans[1].Parent != spans[0].ID || spans[3].Parent != spans[2].ID {
		t.Errorf("parent links wrong: %+v", spans)
	}
	if spans[0].Args["stripes"] != "3" {
		t.Errorf("args = %v", spans[0].Args)
	}
	for _, s := range spans {
		if !s.Ended {
			t.Errorf("span %q not ended", s.Name)
		}
	}

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("events = %d, want 4", len(events))
	}
	for _, ev := range events {
		if ev["ph"] != "X" {
			t.Errorf("event phase = %v, want X", ev["ph"])
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Errorf("event ts missing: %v", ev)
		}
	}
	// The concurrent map task sits on its own display track.
	if events[2]["tid"] == events[0]["tid"] {
		t.Error("ChildTrack did not allocate a fresh track")
	}
	// Its child nests on the same track.
	if events[3]["tid"] != events[2]["tid"] {
		t.Error("Child did not inherit the parent track")
	}
}

func TestDoubleEndKeepsFirstDuration(t *testing.T) {
	tr := NewTracer()
	s := tr.Start("x")
	s.End()
	first := tr.Spans()[0].Dur
	s.End()
	if tr.Spans()[0].Dur != first {
		t.Error("second End changed the duration")
	}
}

func TestTracerConcurrentUse(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("job")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c := root.ChildTrack("task")
				c.Child("inner").Arg("j", "1").End()
				c.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if got := len(tr.Spans()); got != 1+8*100*2 {
		t.Errorf("spans = %d, want %d", got, 1+8*100*2)
	}
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
}
