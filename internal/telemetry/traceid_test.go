package telemetry

import (
	"context"
	"io"
	"regexp"
	"sync"
	"testing"
)

func TestTraceIdentityInheritance(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("op")
	if root.TraceID() == 0 {
		t.Fatal("root span has zero trace ID")
	}
	child := root.Child("phase")
	grand := child.ChildTrack("parallel")
	if child.TraceID() != root.TraceID() || grand.TraceID() != root.TraceID() {
		t.Errorf("trace not inherited: root=%x child=%x grand=%x",
			root.TraceID(), child.TraceID(), grand.TraceID())
	}
	other := tr.Start("op2")
	if other.TraceID() == root.TraceID() {
		t.Error("independent roots share a trace ID")
	}
	sc := child.Context()
	if sc.Trace != root.TraceID() || sc.Span == 0 {
		t.Errorf("Context() = %+v, want trace %x and nonzero span", sc, root.TraceID())
	}
	if got := FormatTraceID(0xabc); !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(got) {
		t.Errorf("FormatTraceID = %q, want 16 hex digits", got)
	}
}

func TestStartRemoteContinuesTrace(t *testing.T) {
	origin := NewTracer()
	rpc := origin.Start("rpc.append")
	sc := rpc.Context()

	server := NewTracer()
	handler := server.StartRemote("rpc.append", sc)
	if handler.TraceID() != rpc.TraceID() {
		t.Errorf("remote span trace = %x, want %x", handler.TraceID(), rpc.TraceID())
	}
	snap := server.Spans()
	if len(snap) != 1 {
		t.Fatalf("server spans = %d, want 1", len(snap))
	}
	if snap[0].Remote != sc.Span {
		t.Errorf("remote parent = %d, want %d", snap[0].Remote, sc.Span)
	}
	// Zero context mints a fresh trace instead of an untraced span.
	fresh := server.StartRemote("rpc.ping", SpanContext{})
	if fresh.TraceID() == 0 {
		t.Error("StartRemote with zero context produced trace 0")
	}
	// Nil tracer stays a no-op.
	var nilTr *Tracer
	if sp := nilTr.StartRemote("x", sc); sp != nil {
		t.Error("nil tracer StartRemote returned non-nil span")
	}
}

func TestContextCarriage(t *testing.T) {
	if got := TraceFromContext(context.Background()); got != 0 {
		t.Errorf("TraceFromContext(background) = %x, want 0", got)
	}
	if got := SpanFromContext(context.Background()); got != nil {
		t.Errorf("SpanFromContext(background) = %v, want nil", got)
	}
	ctx := context.Background()
	if got := ContextWithSpan(ctx, nil); got != ctx {
		t.Error("ContextWithSpan(nil) must return ctx unchanged")
	}
	tr := NewTracer()
	sp := tr.Start("op")
	ctx = ContextWithSpan(ctx, sp)
	if got := SpanFromContext(ctx); got != sp {
		t.Error("span lost in context round trip")
	}
	if got := TraceFromContext(ctx); got != sp.TraceID() {
		t.Errorf("TraceFromContext = %x, want %x", got, sp.TraceID())
	}
}

func TestNewTraceIDUniqueUnderConcurrency(t *testing.T) {
	const goroutines, per = 16, 500
	var mu sync.Mutex
	seen := make(map[uint64]bool, goroutines*per)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]uint64, 0, per)
			for i := 0; i < per; i++ {
				id := NewTraceID()
				if id == 0 {
					t.Error("NewTraceID returned 0")
					return
				}
				local = append(local, id)
			}
			mu.Lock()
			for _, id := range local {
				if seen[id] {
					t.Errorf("duplicate trace ID %x", id)
				}
				seen[id] = true
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
}

func TestSpanLimitAndReset(t *testing.T) {
	tr := NewTracer()
	tr.SetLimit(2)
	var spans []*Span
	for i := 0; i < 5; i++ {
		spans = append(spans, tr.Start("s"))
	}
	if got := len(tr.Spans()); got != 2 {
		t.Errorf("retained spans = %d, want 2 (limit)", got)
	}
	if got := tr.Dropped(); got != 3 {
		t.Errorf("dropped = %d, want 3", got)
	}
	// A dropped span stays fully usable; its children count against the
	// limit like any other span.
	dropped := spans[4]
	if dropped == nil || dropped.TraceID() == 0 {
		t.Fatal("span past the limit is not usable")
	}
	child := dropped.Child("c").Arg("k", "v")
	child.End()
	dropped.End()
	if got := tr.Dropped(); got != 4 {
		t.Errorf("dropped after child = %d, want 4", got)
	}
	tr.Reset()
	if got, d := len(tr.Spans()), tr.Dropped(); got != 0 || d != 0 {
		t.Errorf("after Reset: spans=%d dropped=%d, want 0/0", got, d)
	}
	// Limit survives Reset; unlimited restores with SetLimit(0).
	tr.Start("a")
	tr.Start("b")
	tr.Start("c")
	if got := len(tr.Spans()); got != 2 {
		t.Errorf("limit did not survive Reset: %d spans", got)
	}
	tr.SetLimit(0)
	tr.Start("d")
	if got := len(tr.Spans()); got != 3 {
		t.Errorf("SetLimit(0): spans = %d, want 3", got)
	}
}

func TestMultiComponentTracesCounting(t *testing.T) {
	mk := func(trace uint64, comp string) SpanSnapshot {
		s := SpanSnapshot{Trace: trace}
		if comp != "" {
			s.Args = map[string]string{ComponentArg: comp}
		}
		return s
	}
	spans := []SpanSnapshot{
		mk(1, "client"), mk(1, "namenode"), mk(1, "datanode"), // multi
		mk(2, "client"), mk(2, "client"), // single component
		mk(3, "raidnode"), mk(3, ""), // unannotated span ignored
		mk(0, "client"), mk(0, "datanode"), // untraced ignored
	}
	if got := MultiComponentTraces(spans); got != 1 {
		t.Errorf("MultiComponentTraces = %d, want 1", got)
	}
}

// TestTracerRaceStress exercises every concurrent combination the daemon
// hits: spans created, annotated, and ended while other goroutines export,
// reset, and re-limit the tracer. Run with -race.
func TestTracerRaceStress(t *testing.T) {
	tr := NewTracer()
	tr.SetLimit(256)
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				root := tr.Start("op")
				root.Arg("worker", "w")
				child := root.Child("phase")
				grand := child.ChildTrack("fan")
				grand.Arg(ComponentArg, "datanode").End()
				child.End()
				remote := tr.StartRemote("rpc", root.Context())
				remote.End()
				root.End()
				if i%50 == w {
					tr.Reset()
				}
				if i%67 == w {
					tr.SetLimit(128 + i)
				}
			}
		}()
	}
	var rg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tr.Spans()
				_ = tr.WriteChromeTrace(io.Discard)
				tr.Dropped()
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
}
