// Package telemetry is the observability substrate of the reproduction: a
// dependency-free metrics registry (counters, gauges, and histograms, all
// label-supporting and safe for concurrent use) with Prometheus text
// exposition, plus lightweight span tracing exportable as Chrome
// chrome://tracing JSON. The serving layers (fabric, hdfs, mapred, netcfs)
// publish into a Registry so a running earfsd can report the paper's
// headline quantities — cross-rack vs intra-rack bytes, encode throughput,
// placement violations, queueing delay — live from /metrics.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Kind distinguishes the metric families.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

// String names the kind in Prometheus TYPE terms.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// DefBuckets are the default latency buckets in seconds, spanning the
// sub-millisecond block transfers of the scaled testbed up to multi-second
// encoding jobs.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ExponentialBuckets returns n bucket upper bounds starting at start, each
// factor times the previous. It panics on invalid arguments (registration
// is programmer-controlled, like prometheus.MustRegister).
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("telemetry: invalid exponential buckets (%g, %g, %d)", start, factor, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Registry holds metric families. The zero value is not usable; construct
// with NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*Vec
	order    []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*Vec)}
}

// Vec is one metric family: a named set of series distinguished by label
// values. Obtain series handles with With.
type Vec struct {
	name      string
	help      string
	kind      Kind
	labelKeys []string
	buckets   []float64 // histogram upper bounds, sorted, no +Inf

	mu     sync.Mutex
	series map[string]*Metric
	order  []string
}

// register returns the family with the given shape, creating it on first
// use. Re-registering an existing name with a different shape panics:
// metric names are programmer-controlled, and a silent mismatch would
// corrupt the exposition.
func (r *Registry) register(name, help string, kind Kind, buckets []float64, labelKeys []string) *Vec {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.families[name]; ok {
		if v.kind != kind || len(v.labelKeys) != len(labelKeys) {
			panic(fmt.Sprintf("telemetry: %s re-registered as %v with %d labels (was %v with %d)",
				name, kind, len(labelKeys), v.kind, len(v.labelKeys)))
		}
		for i := range labelKeys {
			if v.labelKeys[i] != labelKeys[i] {
				panic(fmt.Sprintf("telemetry: %s re-registered with labels %v (was %v)",
					name, labelKeys, v.labelKeys))
			}
		}
		return v
	}
	v := &Vec{
		name:      name,
		help:      help,
		kind:      kind,
		labelKeys: append([]string(nil), labelKeys...),
		series:    make(map[string]*Metric),
	}
	if kind == KindHistogram {
		if len(buckets) == 0 {
			buckets = DefBuckets
		}
		v.buckets = append([]float64(nil), buckets...)
		sort.Float64s(v.buckets)
	}
	r.families[name] = v
	r.order = append(r.order, name)
	return v
}

// Counter registers (or returns) a counter family.
func (r *Registry) Counter(name, help string, labelKeys ...string) *Vec {
	return r.register(name, help, KindCounter, nil, labelKeys)
}

// Gauge registers (or returns) a gauge family.
func (r *Registry) Gauge(name, help string, labelKeys ...string) *Vec {
	return r.register(name, help, KindGauge, nil, labelKeys)
}

// Histogram registers (or returns) a histogram family with the given bucket
// upper bounds (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labelKeys ...string) *Vec {
	return r.register(name, help, KindHistogram, buckets, labelKeys)
}

// Unregister removes the named family from the registry. Handles already
// obtained with With keep working but no longer appear in snapshots or the
// exposition; a later registration of the same name starts a fresh family
// (possibly with a different shape). It reports whether the family existed.
func (r *Registry) Unregister(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[name]; !ok {
		return false
	}
	delete(r.families, name)
	for i, n := range r.order {
		if n == name {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	return true
}

// Reset zeroes every series of every family in place: counters and gauges
// return to 0, histograms forget their observations. Families, label keys,
// and existing series handles survive, so code holding a *Metric keeps
// publishing into the same (now zeroed) series — the registry-wide test
// isolation primitive.
func (r *Registry) Reset() {
	r.mu.Lock()
	families := make([]*Vec, 0, len(r.families))
	for _, v := range r.families {
		families = append(families, v)
	}
	r.mu.Unlock()
	for _, v := range families {
		v.mu.Lock()
		series := make([]*Metric, 0, len(v.series))
		for _, m := range v.series {
			series = append(series, m)
		}
		v.mu.Unlock()
		for _, m := range series {
			m.mu.Lock()
			m.value = 0
			m.count = 0
			m.sum = 0
			for i := range m.bucketCounts {
				m.bucketCounts[i] = 0
			}
			m.mu.Unlock()
		}
	}
}

// seriesKey joins label values unambiguously.
func seriesKey(values []string) string {
	return strings.Join(values, "\x00")
}

// With returns the series for the given label values, creating it on first
// use. The value count must match the family's label keys.
func (v *Vec) With(labelValues ...string) *Metric {
	if len(labelValues) != len(v.labelKeys) {
		panic(fmt.Sprintf("telemetry: %s needs %d label values, got %d",
			v.name, len(v.labelKeys), len(labelValues)))
	}
	key := seriesKey(labelValues)
	v.mu.Lock()
	defer v.mu.Unlock()
	if m, ok := v.series[key]; ok {
		return m
	}
	m := &Metric{
		kind:        v.kind,
		labelValues: append([]string(nil), labelValues...),
		bounds:      v.buckets,
	}
	if v.kind == KindHistogram {
		m.bucketCounts = make([]uint64, len(v.buckets)+1) // +1: overflow
	}
	v.series[key] = m
	v.order = append(v.order, key)
	return m
}

// Name returns the family name.
func (v *Vec) Name() string { return v.name }

// Metric is one series of a family. All methods are safe for concurrent
// use.
type Metric struct {
	kind        Kind
	labelValues []string
	bounds      []float64

	mu           sync.Mutex
	value        float64  // counter, gauge
	count        uint64   // histogram observations
	sum          float64  // histogram sum
	bucketCounts []uint64 // per-bucket (non-cumulative), last = overflow
}

// Inc adds one to a counter or gauge.
func (m *Metric) Inc() { m.Add(1) }

// Dec subtracts one from a gauge.
func (m *Metric) Dec() { m.Add(-1) }

// Add adds v. Counters reject negative deltas.
func (m *Metric) Add(v float64) {
	if m.kind == KindHistogram {
		panic("telemetry: Add on histogram; use Observe")
	}
	if m.kind == KindCounter && v < 0 {
		panic(fmt.Sprintf("telemetry: counter decremented by %g", v))
	}
	m.mu.Lock()
	m.value += v
	m.mu.Unlock()
}

// Set stores v in a gauge.
func (m *Metric) Set(v float64) {
	if m.kind != KindGauge {
		panic("telemetry: Set on non-gauge")
	}
	m.mu.Lock()
	m.value = v
	m.mu.Unlock()
}

// Value returns the current counter or gauge value.
func (m *Metric) Value() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.value
}

// Observe folds a sample into a histogram.
func (m *Metric) Observe(v float64) {
	if m.kind != KindHistogram {
		panic("telemetry: Observe on non-histogram")
	}
	m.mu.Lock()
	m.count++
	m.sum += v
	idx := sort.SearchFloat64s(m.bounds, v) // first bound >= v
	m.bucketCounts[idx]++
	m.mu.Unlock()
}

// Count returns the histogram observation count.
func (m *Metric) Count() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.count
}

// Sum returns the histogram sample sum.
func (m *Metric) Sum() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sum
}

// Mean returns the histogram sample mean (0 when empty).
func (m *Metric) Mean() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.count == 0 {
		return 0
	}
	return m.sum / float64(m.count)
}

// Quantile estimates the q-th quantile (0 <= q <= 1) of a histogram by
// linear interpolation within the containing bucket, the standard
// Prometheus histogram_quantile estimate. Samples are assumed non-negative:
// the first bucket interpolates from zero. Estimates in the overflow bucket
// clamp to the largest finite bound. Returns NaN for an empty histogram or
// out-of-range q.
func (m *Metric) Quantile(q float64) float64 {
	if m.kind != KindHistogram {
		panic("telemetry: Quantile on non-histogram")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if q < 0 || q > 1 || m.count == 0 {
		return math.NaN()
	}
	rank := q * float64(m.count)
	var cum float64
	for i, c := range m.bucketCounts {
		next := cum + float64(c)
		if next >= rank && c > 0 {
			if i == len(m.bounds) { // overflow bucket
				return m.bounds[len(m.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = m.bounds[i-1]
			}
			hi := m.bounds[i]
			return lo + (hi-lo)*(rank-cum)/float64(c)
		}
		cum = next
	}
	// All mass below rank (q == 1 with rounding): the last non-empty bucket.
	for i := len(m.bucketCounts) - 1; i >= 0; i-- {
		if m.bucketCounts[i] > 0 {
			if i == len(m.bounds) {
				return m.bounds[len(m.bounds)-1]
			}
			return m.bounds[i]
		}
	}
	return math.NaN()
}

// SeriesSnapshot is the point-in-time state of one series.
type SeriesSnapshot struct {
	Labels map[string]string
	// Value is the counter or gauge value.
	Value float64
	// Count, Sum, and Buckets describe a histogram; Buckets holds the
	// cumulative count per upper bound, ending with the +Inf bucket.
	Count   uint64
	Sum     float64
	Bounds  []float64
	Buckets []uint64
}

// FamilySnapshot is the point-in-time state of one family.
type FamilySnapshot struct {
	Name   string
	Help   string
	Kind   string
	Series []SeriesSnapshot
}

// Snapshot captures every family and series, in registration order.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.Lock()
	order := append([]string(nil), r.order...)
	families := make([]*Vec, len(order))
	for i, name := range order {
		families[i] = r.families[name]
	}
	r.mu.Unlock()

	out := make([]FamilySnapshot, 0, len(families))
	for _, v := range families {
		fs := FamilySnapshot{Name: v.name, Help: v.help, Kind: v.kind.String()}
		v.mu.Lock()
		keys := append([]string(nil), v.order...)
		series := make([]*Metric, len(keys))
		for i, k := range keys {
			series[i] = v.series[k]
		}
		v.mu.Unlock()
		for _, m := range series {
			m.mu.Lock()
			ss := SeriesSnapshot{
				Labels: make(map[string]string, len(v.labelKeys)),
				Value:  m.value,
				Count:  m.count,
				Sum:    m.sum,
			}
			for i, k := range v.labelKeys {
				ss.Labels[k] = m.labelValues[i]
			}
			if v.kind == KindHistogram {
				ss.Bounds = append([]float64(nil), v.buckets...)
				ss.Buckets = make([]uint64, len(m.bucketCounts))
				var cum uint64
				for i, c := range m.bucketCounts {
					cum += c
					ss.Buckets[i] = cum
				}
			}
			m.mu.Unlock()
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}

// escapeLabel escapes a label value for the text exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// labelPairs renders {k="v",...} (empty string for no labels), with extra
// appended last (used for the histogram le label).
func labelPairs(keys []string, values map[string]string, extraKey, extraValue string) string {
	if len(keys) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, escapeLabel(values[k]))
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraKey, escapeLabel(extraValue))
	}
	b.WriteByte('}')
	return b.String()
}

// formatBound renders a bucket bound the way Prometheus does.
func formatBound(v float64) string {
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, fam := range r.Snapshot() {
		if fam.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam.Name, fam.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam.Name, fam.Kind); err != nil {
			return err
		}
		keys := labelKeysOf(fam)
		for _, s := range fam.Series {
			if fam.Kind == "histogram" {
				for i, bound := range s.Bounds {
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam.Name,
						labelPairs(keys, s.Labels, "le", formatBound(bound)), s.Buckets[i]); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam.Name,
					labelPairs(keys, s.Labels, "le", "+Inf"), s.Count); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", fam.Name,
					labelPairs(keys, s.Labels, "", ""), s.Sum); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", fam.Name,
					labelPairs(keys, s.Labels, "", ""), s.Count); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %g\n", fam.Name,
				labelPairs(keys, s.Labels, "", ""), s.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// labelKeysOf recovers the family's label keys in a stable order from a
// snapshot (sorted; snapshots carry labels as maps).
func labelKeysOf(fam FamilySnapshot) []string {
	if len(fam.Series) == 0 {
		return nil
	}
	keys := make([]string, 0, len(fam.Series[0].Labels))
	for k := range fam.Series[0].Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
