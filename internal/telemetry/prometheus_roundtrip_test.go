package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// parseExposition reads Prometheus 0.0.4 text back into a map from
// "name{sorted,labels}" to value, skipping comments. It understands the
// subset WritePrometheus emits: one float per sample line, labels with
// backslash escaping.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in line %q: %v", line, err)
		}
		out[key] = v
	}
	return out
}

// promKey renders the key parseExposition produces for a series, matching
// the writer's label ordering: sorted keys, with the extra pair (the
// histogram "le" bound) appended last.
func promKey(name string, labels map[string]string, extraK, extraV string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) == 0 && extraK == "" {
		return name
	}
	esc := strings.NewReplacer("\\", `\\`, "\"", `\"`, "\n", `\n`)
	parts := make([]string, 0, len(keys)+1)
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf(`%s="%s"`, k, esc.Replace(labels[k])))
	}
	if extraK != "" {
		parts = append(parts, fmt.Sprintf(`%s="%s"`, extraK, esc.Replace(extraV)))
	}
	return name + "{" + strings.Join(parts, ",") + "}"
}

// TestPrometheusRoundTrip writes a populated registry as Prometheus text,
// parses it back, and checks every sample against the registry's own
// Snapshot: counters and gauges by value, histograms bucket for bucket
// plus sum and count. This is the contract the /metrics content
// negotiation relies on — both formats describe the same state.
func TestPrometheusRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rt_bytes_total", "bytes moved", "locality", "op").With("cross", "encode").Add(4096)
	reg.Counter("rt_bytes_total", "bytes moved", "locality", "op").With("intra", "write").Add(123)
	reg.Gauge("rt_backlog", "stripes pending").With().Set(17)
	h := reg.Histogram("rt_lat_seconds", "latency", []float64{0.01, 0.1, 1}, "op")
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.With("read").Observe(v)
	}
	h.With("repair").Observe(0.25)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	parsed := parseExposition(t, b.String())

	checked := 0
	for _, fam := range reg.Snapshot() {
		for _, s := range fam.Series {
			switch fam.Kind {
			case "histogram":
				cum := uint64(0)
				for i, bound := range s.Bounds {
					key := promKey(fam.Name+"_bucket", s.Labels, "le", formatBound(bound))
					got, ok := parsed[key]
					if !ok {
						t.Fatalf("bucket %s missing from exposition", key)
					}
					if uint64(got) != s.Buckets[i] {
						t.Errorf("%s = %v, snapshot %d", key, got, s.Buckets[i])
					}
					if s.Buckets[i] < cum {
						t.Errorf("%s: cumulative buckets decreased", key)
					}
					cum = s.Buckets[i]
					checked++
				}
				inf := promKey(fam.Name+"_bucket", s.Labels, "le", "+Inf")
				if got := parsed[inf]; uint64(got) != s.Count {
					t.Errorf("%s = %v, snapshot count %d", inf, parsed[inf], s.Count)
				}
				if got := parsed[promKey(fam.Name+"_sum", s.Labels, "", "")]; got != s.Sum {
					t.Errorf("%s_sum = %v, snapshot %v", fam.Name, got, s.Sum)
				}
				if got := parsed[promKey(fam.Name+"_count", s.Labels, "", "")]; uint64(got) != s.Count {
					t.Errorf("%s_count = %v, snapshot %d", fam.Name, got, s.Count)
				}
				checked += 3
			default:
				key := promKey(fam.Name, s.Labels, "", "")
				got, ok := parsed[key]
				if !ok {
					t.Fatalf("series %s missing from exposition", key)
				}
				if got != s.Value {
					t.Errorf("%s = %v, snapshot %v", key, got, s.Value)
				}
				checked++
			}
		}
	}
	if checked < 10 {
		t.Fatalf("round-trip only checked %d samples", checked)
	}
}
