package telemetry

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"ear/internal/stats"
)

func TestCounterAndGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("requests_total", "requests", "op").With("read")
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %g, want 3", got)
	}
	g := reg.Gauge("depth", "queue depth").With()
	g.Set(5)
	g.Dec()
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %g, want 4", got)
	}
	// Same labels return the same series.
	if reg.Counter("requests_total", "requests", "op").With("read") != c {
		t.Error("With did not return the existing series")
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative counter Add did not panic")
		}
	}()
	NewRegistry().Counter("c", "").With().Add(-1)
}

func TestRegisterShapeMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "", "a")
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	reg.Gauge("m", "", "a")
}

func TestHistogramBasics(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "latency", []float64{0.1, 1, 10}).With()
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if math.Abs(h.Sum()-55.55) > 1e-9 {
		t.Errorf("sum = %g, want 55.55", h.Sum())
	}
	if mean := h.Mean(); math.Abs(mean-55.55/4) > 1e-9 {
		t.Errorf("mean = %g", mean)
	}
	// Overflow-bucket quantiles clamp to the largest finite bound.
	if q := h.Quantile(1); q != 10 {
		t.Errorf("q100 = %g, want 10", q)
	}
	if q := h.Quantile(0.5); q < 0.1 || q > 1 {
		t.Errorf("q50 = %g, want within (0.1, 1]", q)
	}
}

func TestHistogramQuantileEmptyAndRange(t *testing.T) {
	h := NewRegistry().Histogram("lat", "", nil).With()
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile not NaN")
	}
	h.Observe(0.01)
	if !math.IsNaN(h.Quantile(1.5)) || !math.IsNaN(h.Quantile(-0.1)) {
		t.Error("out-of-range q not NaN")
	}
}

// TestQuantileAgreesWithPercentile cross-checks the histogram quantile
// estimate against stats.Percentile on identical samples: the two must
// agree within one bucket width.
func TestQuantileAgreesWithPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const width = 0.05
	var bounds []float64
	for b := width; b <= 1.0+1e-9; b += width {
		bounds = append(bounds, b)
	}
	h := NewRegistry().Histogram("lat", "", bounds).With()
	samples := make([]float64, 2000)
	for i := range samples {
		samples[i] = rng.Float64() // uniform in [0, 1)
		h.Observe(samples[i])
	}
	for _, p := range []float64{5, 25, 50, 75, 90, 99} {
		exact, err := stats.Percentile(samples, p)
		if err != nil {
			t.Fatal(err)
		}
		est := h.Quantile(p / 100)
		if math.Abs(est-exact) > width {
			t.Errorf("p%g: histogram estimate %g vs exact %g differ by more than bucket width %g",
				p, est, exact, width)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("bytes_total", "bytes moved", "locality").With("cross").Add(1024)
	reg.Gauge("depth", "queue depth").With().Set(2)
	h := reg.Histogram("lat_seconds", "latency", []float64{0.1, 1}).With()
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE bytes_total counter",
		`bytes_total{locality="cross"} 1024`,
		"# TYPE depth gauge",
		"depth 2",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 5.55",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c", "", "k").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `c{k="a\"b\\c\nd"} 1`) {
		t.Errorf("escaping wrong:\n%s", b.String())
	}
}

func TestSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c", "help", "op").With("x").Add(7)
	h := reg.Histogram("h", "", []float64{1, 2}).With()
	h.Observe(0.5)
	h.Observe(1.5)
	snap := reg.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("families = %d, want 2", len(snap))
	}
	if snap[0].Name != "c" || snap[0].Kind != "counter" || snap[0].Series[0].Value != 7 {
		t.Errorf("counter snapshot = %+v", snap[0])
	}
	if snap[0].Series[0].Labels["op"] != "x" {
		t.Errorf("labels = %v", snap[0].Series[0].Labels)
	}
	hs := snap[1].Series[0]
	if hs.Count != 2 || len(hs.Buckets) != 3 || hs.Buckets[0] != 1 || hs.Buckets[1] != 2 || hs.Buckets[2] != 2 {
		t.Errorf("histogram snapshot = %+v", hs)
	}
}

// TestConcurrentUse exercises every mutating path under the race detector.
func TestConcurrentUse(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				reg.Counter("ops_total", "", "op").With("w").Inc()
				reg.Gauge("depth", "").With().Add(1)
				reg.Histogram("lat", "", nil).With().Observe(float64(g*i) / 1000)
				if i%10 == 0 {
					reg.Snapshot()
					var b strings.Builder
					_ = reg.WritePrometheus(&b)
				}
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("ops_total", "", "op").With("w").Value(); got != 1600 {
		t.Errorf("counter = %g, want 1600", got)
	}
}

func TestReset(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("total", "", "op").With("read")
	c.Add(7)
	g := reg.Gauge("depth", "").With()
	g.Set(3)
	h := reg.Histogram("lat", "", []float64{1, 10}).With()
	h.Observe(0.5)
	h.Observe(5)

	reg.Reset()

	if got := c.Value(); got != 0 {
		t.Errorf("counter after Reset = %g, want 0", got)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge after Reset = %g, want 0", got)
	}
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("histogram after Reset: count=%d sum=%g, want 0/0", h.Count(), h.Sum())
	}
	for _, fam := range reg.Snapshot() {
		for _, s := range fam.Series {
			for i, b := range s.Buckets {
				if b != 0 {
					t.Errorf("%s bucket %d = %d after Reset, want 0", fam.Name, i, b)
				}
			}
		}
	}

	// Families and existing handles survive: the old handle publishes into
	// the same series the registry still exposes.
	c.Add(2)
	if got := reg.Counter("total", "", "op").With("read").Value(); got != 2 {
		t.Errorf("counter after Reset+Add = %g, want 2", got)
	}
	if len(reg.Snapshot()) != 3 {
		t.Errorf("families after Reset = %d, want 3", len(reg.Snapshot()))
	}
}

func TestUnregister(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("gone", "").With()
	c.Inc()
	reg.Gauge("kept", "").With().Set(1)

	if !reg.Unregister("gone") {
		t.Fatal("Unregister(existing) = false")
	}
	if reg.Unregister("gone") {
		t.Error("Unregister(missing) = true")
	}
	snap := reg.Snapshot()
	if len(snap) != 1 || snap[0].Name != "kept" {
		t.Fatalf("snapshot after Unregister = %+v, want only kept", snap)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "gone") {
		t.Error("unregistered family still in exposition")
	}

	// The detached handle keeps working; re-registering the name starts a
	// fresh family, with a different shape allowed.
	c.Inc()
	if c.Value() != 2 {
		t.Errorf("detached handle = %g, want 2", c.Value())
	}
	g := reg.Gauge("gone", "", "op").With("x")
	g.Set(9)
	if g.Value() != 9 {
		t.Errorf("re-registered family = %g, want 9", g.Value())
	}
}

func TestResetConcurrentWithPublishers(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n", "").With()
	h := reg.Histogram("lat", "", nil).With()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Inc()
				h.Observe(0.01)
			}
		}
	}()
	for i := 0; i < 100; i++ {
		reg.Reset()
	}
	close(stop)
	wg.Wait()
}
