// Command earall reproduces every table and figure of the paper's
// evaluation in one run, printing the series each reports: Figure 3,
// Theorem 1, Experiments A.1-A.3 (scaled mini-HDFS testbed), B.1-B.2
// (discrete-event simulation), and C.1-C.2 (load-balancing Monte Carlo).
// Its output is the source of EXPERIMENTS.md.
//
// Usage:
//
//	earall            # moderate scale, minutes
//	earall -quick     # reduced scale, tens of seconds
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ear/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "earall:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick = flag.Bool("quick", false, "reduced scale for fast runs")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	b2Runs, lbRuns, mc, thmStripes := 10, 20, 400, 500
	testbed := experiments.TestbedOptions{Stripes: 24, Seed: *seed}
	b1 := experiments.B1Options{Seed: *seed}
	scale := 1
	if *quick {
		b2Runs, lbRuns, mc, thmStripes = 3, 5, 150, 120
		testbed.Stripes = 6
		b1.Stripes = 24
		b1.LeadTime = 60
		scale = 4
	}

	step := func(name string, fn func() error) error {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "[earall] running %s...\n", name)
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(os.Stderr, "[earall] %s done in %v\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if err := step("figure 3", func() error {
		t, err := experiments.RunFig3(experiments.Fig3Options{MonteCarloStripes: mc, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	}); err != nil {
		return err
	}
	if err := step("theorem 1", func() error {
		t, err := experiments.RunTheorem1(experiments.Theorem1Options{Stripes: thmStripes, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	}); err != nil {
		return err
	}
	if err := step("experiment A.1 (fig 8a)", func() error {
		t, err := experiments.RunA1(testbed)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	}); err != nil {
		return err
	}
	if err := step("experiment A.1 UDP (fig 8b)", func() error {
		t, err := experiments.RunA1UDP(testbed)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	}); err != nil {
		return err
	}
	if err := step("experiment A.2 (fig 9)", func() error {
		res, err := experiments.RunA2(experiments.A2Options{TestbedOptions: testbed})
		if err != nil {
			return err
		}
		fmt.Println(res.Summary)
		return nil
	}); err != nil {
		return err
	}
	if err := step("experiment A.3 (fig 10)", func() error {
		jobs := 50
		if *quick {
			jobs = 12
		}
		res, err := experiments.RunA3(experiments.A3Options{TestbedOptions: testbed, Jobs: jobs})
		if err != nil {
			return err
		}
		fmt.Println(res.Summary)
		return nil
	}); err != nil {
		return err
	}
	if err := step("experiment B.1 (fig 12 + table I)", func() error {
		res, err := experiments.RunB1(b1)
		if err != nil {
			return err
		}
		fmt.Println(res.Progress)
		fmt.Println(res.TableI)
		return nil
	}); err != nil {
		return err
	}
	for _, factor := range []experiments.B2Factor{
		experiments.B2VaryK, experiments.B2VaryM, experiments.B2VaryBandwidth,
		experiments.B2VaryWriteRate, experiments.B2VaryRackFT, experiments.B2VaryReplicas,
	} {
		factor := factor
		if err := step(fmt.Sprintf("experiment B.2 (fig 13 %s)", factor), func() error {
			res, err := experiments.RunB2(experiments.B2Options{
				Factor: factor, Runs: b2Runs, Scale: scale, Seed: *seed,
			})
			if err != nil {
				return err
			}
			fmt.Println(res.Encode)
			fmt.Println(res.Write)
			return nil
		}); err != nil {
			return err
		}
	}
	if err := step("recovery trade-off (sec III-D)", func() error {
		stripes := 8
		if *quick {
			stripes = 3
		}
		t, err := experiments.RunRecovery(experiments.RecoveryOptions{Stripes: stripes, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	}); err != nil {
		return err
	}
	if err := step("experiment C.1 (fig 14)", func() error {
		t, err := experiments.RunC1(experiments.LoadBalanceOptions{Runs: lbRuns, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	}); err != nil {
		return err
	}
	return step("experiment C.2 (fig 15)", func() error {
		t, err := experiments.RunC2(experiments.LoadBalanceOptions{Runs: lbRuns, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
}
