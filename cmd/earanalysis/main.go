// Command earanalysis reproduces the paper's analytical and Monte-Carlo
// results: Figure 3 (Equation 1's rack-fault-tolerance violation
// probability of the preliminary EAR), Theorem 1 (expected layout
// iterations), and the Section V-C load-balancing experiments C.1 (storage,
// Figure 14) and C.2 (read hotness, Figure 15).
//
// With -traffic, it also runs one write -> encode -> delete -> repair
// lifecycle per placement policy on the scaled testbed — with the gather
// encode/repair paths and again with the pipelined encode plus two-level
// rack-aware repair — and prints the cross-rack vs intra-rack byte
// breakdown of each phase, cross-checked against the fabric's own payload
// counters.
//
// With -tenants, it runs a tenant-tagged transition under both policies
// and cross-checks that the per-tenant byte attribution sums to the
// fabric's own cross-/intra-rack totals within 1%, printing the
// per-tenant breakdown.
//
// Usage:
//
//	earanalysis -fig3 -mc 500
//	earanalysis -theorem1 -stripes 1000
//	earanalysis -c1 -c2 -runs 50
//	earanalysis -traffic
//	earanalysis -tenants
package main

import (
	"flag"
	"fmt"
	"os"

	"ear/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "earanalysis:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig3     = flag.Bool("fig3", false, "reproduce Figure 3 (violation probability)")
		theorem1 = flag.Bool("theorem1", false, "reproduce the Theorem 1 iteration table")
		c1       = flag.Bool("c1", false, "reproduce Experiment C.1 (storage balance, Figure 14)")
		c2       = flag.Bool("c2", false, "reproduce Experiment C.2 (read hotness, Figure 15)")
		traffic  = flag.Bool("traffic", false, "per-phase cross-rack vs intra-rack traffic breakdown (RR and EAR)")
		tenants  = flag.Bool("tenants", false, "per-tenant accounting cross-check: run a tenant-tagged transition and verify per-tenant byte attribution sums to the fabric totals within 1%")
		all      = flag.Bool("all", false, "run every analysis")
		mc       = flag.Int("mc", 0, "Monte-Carlo stripes per Figure 3 cell (0 = analytic only)")
		stripes  = flag.Int("stripes", 500, "stripes measured for Theorem 1")
		blocks   = flag.Int("blocks", 10000, "blocks placed in C.1")
		runs     = flag.Int("runs", 20, "averaging runs for C.1 / C.2")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if !*fig3 && !*theorem1 && !*c1 && !*c2 && !*traffic && !*tenants {
		*all = true
	}
	if *all {
		*fig3, *theorem1, *c1, *c2, *traffic, *tenants = true, true, true, true, true, true
	}
	if *fig3 {
		t, err := experiments.RunFig3(experiments.Fig3Options{MonteCarloStripes: *mc, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Println(t)
	}
	if *theorem1 {
		t, err := experiments.RunTheorem1(experiments.Theorem1Options{Stripes: *stripes, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Println(t)
	}
	if *c1 {
		t, err := experiments.RunC1(experiments.LoadBalanceOptions{Blocks: *blocks, Runs: *runs, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Println(t)
	}
	if *c2 {
		t, err := experiments.RunC2(experiments.LoadBalanceOptions{Runs: *runs, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Println(t)
	}
	if *traffic {
		for _, pipelined := range []bool{false, true} {
			for _, policy := range []string{"rr", "ear"} {
				opts := experiments.TestbedOptions{Seed: *seed, PipelinedEncode: pipelined,
					RackAwareRepair: pipelined}
				res, err := experiments.RunTraffic(opts, policy, 9, 6)
				if err != nil {
					return err
				}
				fmt.Println(res.Summary)
			}
		}
	}
	if *tenants {
		// RunTransition itself fails if any policy's per-tenant byte
		// attribution drifts more than 1% from the fabric's own counters,
		// so a clean table here is the cross-check passing.
		res, err := experiments.RunTransition(experiments.TransitionOptions{
			TestbedOptions: experiments.TestbedOptions{Stripes: 8, Seed: *seed},
		})
		if err != nil {
			return fmt.Errorf("tenant accounting cross-check: %w", err)
		}
		fmt.Println(res.Summary)
		for _, run := range res.Runs {
			fmt.Printf("-- %s per-tenant bytes (fabric: %d cross-rack, %d intra-rack) --\n",
				run.Policy, run.FabricCrossBytes, run.FabricIntraBytes)
			for _, ts := range run.Tenants {
				fmt.Printf("%-12s cross=%-12d intra=%-12d", ts.Tenant, ts.CrossRackBytes, ts.IntraRackBytes)
				for _, op := range ts.Ops {
					fmt.Printf(" %s=%d/%dB", op.Op, op.Count, op.Bytes)
				}
				fmt.Println()
			}
		}
	}
	return nil
}
