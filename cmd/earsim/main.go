// Command earsim runs the paper's discrete-event simulations (Section
// V-B): Experiment B.1 validates the simulator against the testbed setting
// and reports Table I; Experiment B.2 sweeps one parameter of the 20x20
// cluster and reports Figure 13's normalized EAR/RR throughput boxplots.
//
// Usage:
//
//	earsim -exp b1
//	earsim -exp b2 -vary k -runs 30
//	earsim -exp b2 -vary bw -runs 10 -scale 2
package main

import (
	"flag"
	"fmt"
	"os"

	"ear/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "earsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp     = flag.String("exp", "b2", `experiment: "b1" or "b2"`)
		vary    = flag.String("vary", "k", "B.2 factor: k, m, bw, writerate, rackft, replicas")
		runs    = flag.Int("runs", 10, "seeded runs per configuration (paper: 30)")
		scale   = flag.Int("scale", 1, "divide the encode workload by this factor for quick runs")
		stripes = flag.Int("stripes", 96, "stripes encoded in B.1")
		series  = flag.Bool("series", false, "print the B.1 per-stripe completion series")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	switch *exp {
	case "b1":
		res, err := experiments.RunB1(experiments.B1Options{Stripes: *stripes, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Println(res.Progress)
		fmt.Println(res.TableI)
		if *series {
			for _, policy := range []string{"rr", "ear"} {
				fmt.Printf("-- %s encoded-stripes series (t, count) --\n", policy)
				for _, p := range res.Series[policy].Points {
					fmt.Printf("%.2f\t%.0f\n", p.T, p.V)
				}
			}
		}
		return nil
	case "b2":
		res, err := experiments.RunB2(experiments.B2Options{
			Factor: experiments.B2Factor(*vary),
			Runs:   *runs,
			Scale:  *scale,
			Seed:   *seed,
		})
		if err != nil {
			return err
		}
		fmt.Println(res.Encode)
		fmt.Println(res.Write)
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
}
