package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"ear/internal/hdfs"
	"ear/internal/metalog"
	"ear/internal/placement"
)

// metaLogResult is one raw write-ahead-log append scenario: a single
// appender streaming small records under the given fsync policy.
type metaLogResult struct {
	Policy        string  `json:"policy"`
	Appends       int     `json:"appends"`
	NsPerAppend   float64 `json:"ns_per_append"`
	AppendsPerSec float64 `json:"appends_per_sec"`
	Fsyncs        uint64  `json:"fsyncs"`
}

// groupCommitResult measures SyncAlways group commit: g goroutines each
// append a record and block in WaitDurable until an fsync covers it.
// Concurrent waiters batch behind one fsync, so AppendsPerFsync is the
// amortization factor the batching buys.
type groupCommitResult struct {
	Goroutines      int     `json:"goroutines"`
	NsPerDurableOp  float64 `json:"ns_per_durable_op"`
	AppendsPerFsync float64 `json:"appends_per_fsync"`
}

// metaAllocResult is one AllocateBlock scenario: the same sharded NameNode
// hot path with the metadata plane in memory only, or write-ahead logged
// under each fsync policy.
type metaAllocResult struct {
	Mode      string  `json:"mode"` // in-memory | wal-interval | wal-always | wal-none
	Blocks    int     `json:"blocks"`
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// metaSnapshotDoc is the meta suite's emitted document.
type metaSnapshotDoc struct {
	GeneratedAt string   `json:"generated_at"`
	Host        hostInfo `json:"host"`
	// Log is raw single-appender log throughput per fsync policy.
	Log []metaLogResult `json:"log"`
	// GroupCommit is durable-append latency under SyncAlways across
	// goroutine counts.
	GroupCommit []groupCommitResult `json:"group_commit"`
	// Alloc compares the AllocateBlock hot path with and without the log.
	Alloc []metaAllocResult `json:"alloc"`
	// AllocIntervalOverhead is wal-interval ns/op over in-memory ns/op —
	// the cost of durability on the default policy (acceptance: <= 2x).
	AllocIntervalOverhead float64 `json:"alloc_interval_overhead"`
	// Restart-replay: a NameNode holding ReplayBlocks committed blocks is
	// closed and recovered from the log alone, then snapshotted and
	// recovered again from the snapshot plus an empty tail.
	ReplayBlocks               int     `json:"replay_blocks"`
	ReplayOps                  int64   `json:"replay_ops"`
	RestartReplaySeconds       float64 `json:"restart_replay_seconds"`
	ReplayOpsPerSec            float64 `json:"replay_ops_per_sec"`
	SnapshotSeconds            float64 `json:"snapshot_seconds"`
	SnapshotBytes              int     `json:"snapshot_bytes"`
	RestartFromSnapshotSeconds float64 `json:"restart_from_snapshot_seconds"`
}

// runMeta benchmarks the durable metadata plane: raw log appends per fsync
// policy, group-commit batching, the AllocateBlock overhead of write-ahead
// logging, and restart-replay time at replayBlocks committed blocks.
func runMeta(out string, blocks, replayBlocks int) error {
	snap := metaSnapshotDoc{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Host:        host(),
	}

	// Raw append throughput, one appender, 64-byte records. SyncAlways pays
	// a full fsync per record when nothing else is in flight, so it runs a
	// smaller batch.
	payload := make([]byte, 64)
	for _, pol := range []metalog.SyncPolicy{metalog.SyncInterval, metalog.SyncAlways, metalog.SyncNone} {
		n := 50000
		if pol == metalog.SyncAlways {
			n = 1000
		}
		res, err := withTempLog(pol, func(l *metalog.Log) (metaLogResult, error) {
			t0 := time.Now()
			for i := 0; i < n; i++ {
				lsn, err := l.Append(payload)
				if err != nil {
					return metaLogResult{}, err
				}
				if err := l.WaitDurable(lsn); err != nil {
					return metaLogResult{}, err
				}
			}
			secs := time.Since(t0).Seconds()
			return metaLogResult{
				Policy: pol.String(), Appends: n,
				NsPerAppend:   secs * 1e9 / float64(n),
				AppendsPerSec: float64(n) / secs,
				Fsyncs:        l.Stats().Fsyncs,
			}, nil
		})
		if err != nil {
			return err
		}
		snap.Log = append(snap.Log, res)
	}

	// Group commit: concurrent durable appends batch behind shared fsyncs.
	for _, g := range []int{1, 4, 16} {
		const total = 2000
		res, err := withTempLog(metalog.SyncAlways, func(l *metalog.Log) (groupCommitResult, error) {
			var wg sync.WaitGroup
			errs := make([]error, g)
			per := total / g
			t0 := time.Now()
			for i := 0; i < g; i++ {
				n := per
				if i == g-1 {
					n = total - per*(g-1)
				}
				wg.Add(1)
				go func(slot, n int) {
					defer wg.Done()
					for j := 0; j < n; j++ {
						lsn, err := l.Append(payload)
						if err == nil {
							err = l.WaitDurable(lsn)
						}
						if err != nil {
							errs[slot] = err
							return
						}
					}
				}(i, n)
			}
			wg.Wait()
			secs := time.Since(t0).Seconds()
			for _, err := range errs {
				if err != nil {
					return groupCommitResult{}, err
				}
			}
			st := l.Stats()
			fsyncs := st.Fsyncs
			if fsyncs == 0 {
				fsyncs = 1
			}
			return groupCommitResult{
				Goroutines:      g,
				NsPerDurableOp:  secs * 1e9 / total,
				AppendsPerFsync: float64(st.Appends) / float64(fsyncs),
			}, nil
		})
		if err != nil {
			return err
		}
		snap.GroupCommit = append(snap.GroupCommit, res)
	}

	// AllocateBlock with and without the write-ahead log, 4 goroutines (the
	// durable modes group-commit across them).
	cfg, err := placementBenchConfig()
	if err != nil {
		return err
	}
	var inmemNs, intervalNs float64
	for _, mode := range []struct {
		name string
		sync metalog.SyncPolicy
		wal  bool
	}{
		{"in-memory", 0, false},
		{"wal-interval", metalog.SyncInterval, true},
		{"wal-always", metalog.SyncAlways, true},
		{"wal-none", metalog.SyncNone, true},
	} {
		secs, err := allocDurable(cfg, mode.wal, mode.sync, blocks)
		if err != nil {
			return err
		}
		ns := secs * 1e9 / float64(blocks)
		snap.Alloc = append(snap.Alloc, metaAllocResult{
			Mode: mode.name, Blocks: blocks,
			NsPerOp: ns, OpsPerSec: float64(blocks) / secs,
		})
		switch mode.name {
		case "in-memory":
			inmemNs = ns
		case "wal-interval":
			intervalNs = ns
		}
	}
	if inmemNs > 0 {
		snap.AllocIntervalOverhead = intervalNs / inmemNs
	}

	// Restart-replay at replayBlocks committed blocks: build the state once
	// (SyncNone — the build is not what's measured; Close flushes), then
	// time a pure log replay, a snapshot, and a snapshot-based restart.
	dir, err := os.MkdirTemp("", "earbench-meta-replay-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if err := buildReplayState(cfg, dir, replayBlocks); err != nil {
		return err
	}

	open := func() (*hdfs.NameNode, float64, error) {
		nn, err := hdfs.NewShardedNameNode(cfg, "ear", 1, false)
		if err != nil {
			return nil, 0, err
		}
		l, err := metalog.Open(metalog.Options{Dir: dir, Sync: metalog.SyncNone})
		if err != nil {
			return nil, 0, err
		}
		t0 := time.Now()
		if err := nn.RecoverMeta(l); err != nil {
			l.Close()
			return nil, 0, err
		}
		return nn, time.Since(t0).Seconds(), nil
	}

	nn, replaySecs, err := open()
	if err != nil {
		return err
	}
	snap.ReplayBlocks = nn.BlockCount()
	snap.ReplayOps = nn.RecoveredOps()
	snap.RestartReplaySeconds = replaySecs
	if replaySecs > 0 {
		snap.ReplayOpsPerSec = float64(snap.ReplayOps) / replaySecs
	}
	if snap.ReplayBlocks < replayBlocks {
		return fmt.Errorf("replay state holds %d blocks, want >= %d", snap.ReplayBlocks, replayBlocks)
	}

	t0 := time.Now()
	if err := nn.SnapshotNow(); err != nil {
		return err
	}
	snap.SnapshotSeconds = time.Since(t0).Seconds()
	snap.SnapshotBytes = len(nn.StateDigest())
	if err := nn.CloseMeta(); err != nil {
		return err
	}

	nn, snapRestartSecs, err := open()
	if err != nil {
		return err
	}
	snap.RestartFromSnapshotSeconds = snapRestartSecs
	if err := nn.CloseMeta(); err != nil {
		return err
	}

	if err := writeSnapshot(out, snap); err != nil {
		return err
	}
	if out != "-" {
		fmt.Printf("earbench: wrote %s (alloc interval overhead %.2fx, replay %d blocks / %d ops in %.2fs, snapshot restart %.3fs)\n",
			out, snap.AllocIntervalOverhead, snap.ReplayBlocks, snap.ReplayOps,
			snap.RestartReplaySeconds, snap.RestartFromSnapshotSeconds)
	}
	return nil
}

// withTempLog runs fn against a fresh log in a throwaway directory.
func withTempLog[T any](pol metalog.SyncPolicy, fn func(*metalog.Log) (T, error)) (T, error) {
	var zero T
	dir, err := os.MkdirTemp("", "earbench-meta-log-")
	if err != nil {
		return zero, err
	}
	defer os.RemoveAll(dir)
	l, err := metalog.Open(metalog.Options{Dir: dir, Sync: pol})
	if err != nil {
		return zero, err
	}
	defer l.Close()
	// The directory is fresh; recovery is a no-op but positions the log for
	// appending (and starts the interval fsyncer).
	noop := func([]byte) error { return nil }
	if err := l.Recover(noop, func(uint64, []byte) error { return nil }); err != nil {
		return zero, err
	}
	return fn(l)
}

// allocDurable measures `blocks` AllocateBlock calls across 4 goroutines on
// a sharded EAR NameNode, optionally write-ahead logged under pol.
func allocDurable(cfg placement.Config, wal bool, pol metalog.SyncPolicy, blocks int) (float64, error) {
	nn, err := hdfs.NewShardedNameNode(cfg, "ear", 1, false)
	if err != nil {
		return 0, err
	}
	if wal {
		dir, err := os.MkdirTemp("", "earbench-meta-alloc-")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		l, err := metalog.Open(metalog.Options{Dir: dir, Sync: pol})
		if err != nil {
			return 0, err
		}
		if err := nn.RecoverMeta(l); err != nil {
			l.Close()
			return 0, err
		}
		defer nn.CloseMeta()
	}
	return allocHammer(nn, 4, blocks)
}

// buildReplayState populates a durable NameNode with `blocks` committed
// blocks (allocate + commit, stripes sealing as they fill) and closes it,
// leaving the log on disk for the replay measurements.
func buildReplayState(cfg placement.Config, dir string, blocks int) error {
	nn, err := hdfs.NewShardedNameNode(cfg, "ear", 1, false)
	if err != nil {
		return err
	}
	l, err := metalog.Open(metalog.Options{Dir: dir, Sync: metalog.SyncNone})
	if err != nil {
		return err
	}
	if err := nn.RecoverMeta(l); err != nil {
		l.Close()
		return err
	}
	for i := 0; i < blocks; i++ {
		meta, err := nn.AllocateBlock(1)
		if err != nil {
			nn.CloseMeta()
			return err
		}
		if err := nn.CommitBlock(meta.ID); err != nil {
			nn.CloseMeta()
			return err
		}
	}
	if _, err := nn.FlushOpenStripes(); err != nil {
		nn.CloseMeta()
		return err
	}
	return nn.CloseMeta()
}
