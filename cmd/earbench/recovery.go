package main

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"ear/internal/hdfs"
	"ear/internal/topology"
)

// recoveryResult is one measured node-recovery scenario of the recovery
// suite.
type recoveryResult struct {
	Name string `json:"name"`
	// RackAware says which repair path ran: the two-level rack-aware
	// pipeline or the naive gather.
	RackAware bool `json:"rack_aware"`
	// InjectedFrac is the background cross-traffic rate as a fraction of
	// link bandwidth.
	InjectedFrac float64 `json:"injected_frac"`
	// DeadNode is the failed node (the one holding the most stripe
	// members; identical across cells because placement is seeded).
	DeadNode       int `json:"dead_node"`
	BlocksRepaired int `json:"blocks_repaired"`
	ParityRepaired int `json:"parity_repaired"`
	// MBPerSec is recovery throughput: repaired bytes over the sweep's
	// wall clock.
	MBPerSec float64 `json:"mb_per_sec"`
	// CrossRackBytesPerBlock is repair-attributed cross-rack traffic per
	// repaired member (injected traffic carries no payload and repair
	// accounting only books repair streams, so the figure stays clean
	// under background load).
	CrossRackBytesPerBlock float64 `json:"cross_rack_bytes_per_block"`
	TotalBytesPerBlock     float64 `json:"total_bytes_per_block"`
	Seconds                float64 `json:"seconds"`
}

// recoverySnapshot is the recovery suite's emitted document.
type recoverySnapshot struct {
	GeneratedAt    string           `json:"generated_at"`
	Host           hostInfo         `json:"host"`
	Racks          int              `json:"racks"`
	NodesPerRack   int              `json:"nodes_per_rack"`
	K              int              `json:"k"`
	N              int              `json:"n"`
	C              int              `json:"c"`
	BlockSizeBytes int              `json:"block_size_bytes"`
	LinkMBps       float64          `json:"link_mb_per_sec"`
	Results        []recoveryResult `json:"results"`
	// CrossRackReduction is 1 - twolevel/naive cross-rack bytes per
	// repaired member with no background traffic.
	CrossRackReduction float64 `json:"cross_rack_reduction"`
	// RecoverySpeedup is two-level MB/s over naive MB/s at the same
	// operating point.
	RecoverySpeedup float64 `json:"recovery_speedup"`
}

// runRecovery benchmarks parallel full-node recovery through the two-level
// rack-aware repair path against the naive gather on a shaped fabric: a
// wide (14,12) code packed c=4 blocks per rack on a 4x4 topology, so each
// stripe spans all four racks and a gather repair funnels most of its k=12
// survivors into one node while the two-level path folds each rack's
// survivors into one partial sum. The grid crosses the two repair paths
// with SWIM-style background traffic; every cell rebuilds the same seeded
// cluster and kills the node holding the most data blocks (data placement
// is seed-deterministic, so the failed node and its lost data set are
// identical across cells; only the nondeterministic parity assignments
// vary).
func runRecovery(out string, stripes int) error {
	const (
		racks  = 4
		npr    = 4
		k      = 12
		n      = 14
		cMax   = 4
		blockB = 256 << 10
		linkBs = 4 << 20
	)
	snap := recoverySnapshot{
		GeneratedAt:    time.Now().UTC().Format(time.RFC3339),
		Host:           host(),
		Racks:          racks,
		NodesPerRack:   npr,
		K:              k,
		N:              n,
		C:              cMax,
		BlockSizeBytes: blockB,
		LinkMBps:       linkBs / (1 << 20),
	}

	run := func(name string, rackAware bool, frac float64) (recoveryResult, error) {
		cfg := hdfs.Config{
			Racks:                    racks,
			NodesPerRack:             npr,
			Policy:                   "ear",
			Replicas:                 2,
			K:                        k,
			N:                        n,
			C:                        cMax,
			BlockSizeBytes:           blockB,
			BandwidthBytesPerSec:     linkBs,
			DiskBandwidthBytesPerSec: 2 * linkBs,
			MapTasks:                 4,
			Seed:                     1,
			RackAwareRepair:          rackAware,
			RecoverParallelism:       16,
		}
		c, err := hdfs.NewCluster(cfg)
		if err != nil {
			return recoveryResult{}, err
		}
		defer c.Close()
		// Populate and encode unthrottled — only the recovery sweep is
		// measured — then restore the shaped rates.
		if err := c.Fabric().SetAllRates(64 << 30); err != nil {
			return recoveryResult{}, err
		}
		if err := c.Fabric().SetDiskRates(64 << 30); err != nil {
			return recoveryResult{}, err
		}
		rng := rand.New(rand.NewSource(7))
		payload := make([]byte, blockB)
		for i := 0; i < stripes*k; i++ {
			rng.Read(payload)
			client := topology.NodeID(rng.Intn(c.Topology().Nodes()))
			if _, err := c.WriteBlock(client, payload); err != nil {
				return recoveryResult{}, err
			}
		}
		if _, err := c.NameNode().FlushOpenStripes(); err != nil {
			return recoveryResult{}, err
		}
		if _, err := c.RaidNode().EncodeAll(); err != nil {
			return recoveryResult{}, err
		}
		if err := c.Fabric().SetAllRates(linkBs); err != nil {
			return recoveryResult{}, err
		}
		if err := c.Fabric().SetDiskRates(2 * linkBs); err != nil {
			return recoveryResult{}, err
		}
		var injectors []interface{ Close() }
		if frac > 0 {
			nodes := c.Topology().Nodes()
			for a := 0; a+1 < nodes; a += 2 {
				inj, err := c.Fabric().InjectTraffic(topology.NodeID(a), topology.NodeID(a+1), frac*linkBs)
				if err != nil {
					return recoveryResult{}, err
				}
				injectors = append(injectors, inj)
			}
		}
		defer func() {
			for _, inj := range injectors {
				inj.Close()
			}
		}()
		dead := busiestNode(c)
		if dead < 0 {
			return recoveryResult{}, fmt.Errorf("%s: nothing encoded", name)
		}
		c.NameNode().MarkDead(dead)
		stats, err := c.RecoverNode(context.Background(), dead)
		if err != nil {
			return recoveryResult{}, fmt.Errorf("%s: %w", name, err)
		}
		repaired := stats.BlocksRepaired + stats.ParityRepaired
		if repaired == 0 {
			return recoveryResult{}, fmt.Errorf("%s: busiest node lost nothing", name)
		}
		return recoveryResult{
			Name:                   name,
			RackAware:              rackAware,
			InjectedFrac:           frac,
			DeadNode:               int(dead),
			BlocksRepaired:         stats.BlocksRepaired,
			ParityRepaired:         stats.ParityRepaired,
			MBPerSec:               stats.ThroughputMBps(),
			CrossRackBytesPerBlock: float64(stats.CrossRackBytes) / float64(repaired),
			TotalBytesPerBlock:     float64(stats.TotalBytes) / float64(repaired),
			Seconds:                stats.Duration.Seconds(),
		}, nil
	}

	var naive0, two0 recoveryResult
	for _, mode := range []struct {
		name      string
		rackAware bool
	}{{"naive", false}, {"twolevel", true}} {
		for _, frac := range []float64{0, 0.4} {
			r, err := run(fmt.Sprintf("%s_bg%.1f", mode.name, frac), mode.rackAware, frac)
			if err != nil {
				return err
			}
			if frac == 0 {
				if mode.rackAware {
					two0 = r
				} else {
					naive0 = r
				}
			}
			snap.Results = append(snap.Results, r)
		}
	}
	if naive0.CrossRackBytesPerBlock > 0 {
		snap.CrossRackReduction = 1 - two0.CrossRackBytesPerBlock/naive0.CrossRackBytesPerBlock
	}
	if naive0.MBPerSec > 0 {
		snap.RecoverySpeedup = two0.MBPerSec / naive0.MBPerSec
	}

	if err := writeSnapshot(out, snap); err != nil {
		return err
	}
	if out != "-" {
		fmt.Printf("earbench: wrote %s (recovery speedup %.2fx, cross-rack bytes/block -%.1f%%)\n",
			out, snap.RecoverySpeedup, snap.CrossRackReduction*100)
	}
	return nil
}

// busiestNode returns the live node holding the most data blocks of encoded
// stripes, or -1 when nothing is encoded. Parity holders are deliberately
// excluded: data placement is seed-deterministic across separately built
// clusters while parity assignment is not, and the bench needs every cell
// to kill the same node.
func busiestNode(c *hdfs.Cluster) topology.NodeID {
	nn := c.NameNode()
	load := make(map[topology.NodeID]int)
	for _, sid := range nn.EncodedStripes() {
		sm, err := nn.Stripe(sid)
		if err != nil {
			continue
		}
		for _, b := range sm.Info.Blocks {
			meta, err := nn.Block(b)
			if err != nil || meta.Aborted {
				continue
			}
			for _, node := range meta.Nodes {
				if !nn.IsDead(node) {
					load[node]++
				}
			}
		}
	}
	best, bestLoad := topology.NodeID(-1), 0
	for node, l := range load {
		if l > bestLoad || (l == bestLoad && best >= 0 && node < best) {
			best, bestLoad = node, l
		}
	}
	return best
}
