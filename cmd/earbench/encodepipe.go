package main

import (
	"fmt"
	"math/rand"
	"time"

	"ear/internal/hdfs"
	"ear/internal/topology"
)

// encodePipeResult is one measured encode scenario of the encodepipe suite.
type encodePipeResult struct {
	Name string `json:"name"`
	// Pipelined says which encode path ran; ChunkBytes is the pipeline's
	// chunk size (0 for the gather path).
	Pipelined  bool `json:"pipelined"`
	ChunkBytes int  `json:"chunk_bytes,omitempty"`
	// InjectedFrac is the background cross-traffic rate as a fraction of
	// link bandwidth.
	InjectedFrac float64 `json:"injected_frac"`
	Stripes      int     `json:"stripes"`
	// MBPerSec is encoded data throughput (k data blocks per stripe over the
	// job's wall clock).
	MBPerSec float64 `json:"mb_per_sec"`
	// CrossCoreBytesPerStripe is the fabric's cross-rack payload delta over
	// the encode job divided by stripes (injected traffic carries no
	// payload, so the counter stays clean under background load).
	CrossCoreBytesPerStripe float64 `json:"cross_core_bytes_per_stripe"`
	// CrossRackDownloads is the job's cross-rack traffic in
	// block-equivalents (pipelined hops count m blocks per rack boundary).
	CrossRackDownloads int `json:"cross_rack_downloads"`
}

// encodePipeSnapshot is the encodepipe suite's emitted document.
type encodePipeSnapshot struct {
	GeneratedAt    string             `json:"generated_at"`
	Host           hostInfo           `json:"host"`
	Racks          int                `json:"racks"`
	NodesPerRack   int                `json:"nodes_per_rack"`
	K              int                `json:"k"`
	N              int                `json:"n"`
	BlockSizeBytes int                `json:"block_size_bytes"`
	LinkMBps       float64            `json:"link_mb_per_sec"`
	Results        []encodePipeResult `json:"results"`
	// PipelineSpeedup is pipelined MB/s over gather MB/s at the default
	// chunk size with no background traffic.
	PipelineSpeedup float64 `json:"pipeline_speedup"`
	// CrossCoreReduction is 1 - pipelined/gather cross-core bytes per
	// stripe at the same operating point.
	CrossCoreReduction float64 `json:"cross_core_reduction"`
}

// runEncodePipe benchmarks the RapidRAID-style pipelined distributed encode
// against the gather baseline on a shaped fabric: a wide code (14,12) on a
// 4x4 topology, so the gather path funnels twelve blocks into one encoder
// node while the pipeline ships only m=2 partial sums per rack boundary. The
// grid crosses the two encode paths with pipeline chunk sizes and SWIM-style
// background traffic.
func runEncodePipe(out string, stripes int) error {
	const (
		racks  = 4
		npr    = 4
		k      = 12
		n      = 14
		blockB = 256 << 10
		linkBs = 4 << 20
	)
	snap := encodePipeSnapshot{
		GeneratedAt:    time.Now().UTC().Format(time.RFC3339),
		Host:           host(),
		Racks:          racks,
		NodesPerRack:   npr,
		K:              k,
		N:              n,
		BlockSizeBytes: blockB,
		LinkMBps:       linkBs / (1 << 20),
	}

	run := func(name string, pipelined bool, chunk int, frac float64) (encodePipeResult, error) {
		cfg := hdfs.Config{
			Racks:                    racks,
			NodesPerRack:             npr,
			Policy:                   "rr",
			Replicas:                 2,
			K:                        k,
			N:                        n,
			C:                        npr,
			BlockSizeBytes:           blockB,
			BandwidthBytesPerSec:     linkBs,
			DiskBandwidthBytesPerSec: 2 * linkBs,
			MapTasks:                 4,
			Seed:                     1,
			PipelinedEncode:          pipelined,
			PipelineChunkBytes:       chunk,
		}
		c, err := hdfs.NewCluster(cfg)
		if err != nil {
			return encodePipeResult{}, err
		}
		defer c.Close()
		// Populate unthrottled — the write phase is not part of the
		// measurement — then restore the shaped rates.
		if err := c.Fabric().SetAllRates(64 << 30); err != nil {
			return encodePipeResult{}, err
		}
		if err := c.Fabric().SetDiskRates(64 << 30); err != nil {
			return encodePipeResult{}, err
		}
		rng := rand.New(rand.NewSource(7))
		payload := make([]byte, blockB)
		for i := 0; i < stripes*k; i++ {
			rng.Read(payload)
			client := topology.NodeID(rng.Intn(c.Topology().Nodes()))
			if _, err := c.WriteBlock(client, payload); err != nil {
				return encodePipeResult{}, err
			}
		}
		c.NameNode().FlushOpenStripes()
		if err := c.Fabric().SetAllRates(linkBs); err != nil {
			return encodePipeResult{}, err
		}
		if err := c.Fabric().SetDiskRates(2 * linkBs); err != nil {
			return encodePipeResult{}, err
		}
		var injectors []interface{ Close() }
		if frac > 0 {
			nodes := c.Topology().Nodes()
			for a := 0; a+1 < nodes; a += 2 {
				inj, err := c.Fabric().InjectTraffic(topology.NodeID(a), topology.NodeID(a+1), frac*linkBs)
				if err != nil {
					return encodePipeResult{}, err
				}
				injectors = append(injectors, inj)
			}
		}
		defer func() {
			for _, inj := range injectors {
				inj.Close()
			}
		}()
		before := c.Fabric().Snapshot()
		st, err := c.RaidNode().EncodeAll()
		if err != nil {
			return encodePipeResult{}, err
		}
		d := c.Fabric().Snapshot().Sub(before)
		if st.Stripes == 0 {
			return encodePipeResult{}, fmt.Errorf("%s: no stripes encoded", name)
		}
		if pipelined && st.PipelinedStripes != st.Stripes {
			return encodePipeResult{}, fmt.Errorf("%s: %d of %d stripes took the pipeline", name, st.PipelinedStripes, st.Stripes)
		}
		return encodePipeResult{
			Name:                    name,
			Pipelined:               pipelined,
			ChunkBytes:              chunk,
			InjectedFrac:            frac,
			Stripes:                 st.Stripes,
			MBPerSec:                st.ThroughputMBps,
			CrossCoreBytesPerStripe: float64(d.CrossRackBytes) / float64(st.Stripes),
			CrossRackDownloads:      st.CrossRackDownloads,
		}, nil
	}

	var gather0, pipe0 encodePipeResult
	for _, frac := range []float64{0, 0.4} {
		r, err := run(fmt.Sprintf("gather_bg%.1f", frac), false, 0, frac)
		if err != nil {
			return err
		}
		if frac == 0 {
			gather0 = r
		}
		snap.Results = append(snap.Results, r)
	}
	for _, chunk := range []int{16 << 10, 64 << 10, 256 << 10} {
		for _, frac := range []float64{0, 0.4} {
			r, err := run(fmt.Sprintf("pipelined_chunk%dk_bg%.1f", chunk>>10, frac), true, chunk, frac)
			if err != nil {
				return err
			}
			if chunk == 64<<10 && frac == 0 {
				pipe0 = r
			}
			snap.Results = append(snap.Results, r)
		}
	}
	if gather0.MBPerSec > 0 {
		snap.PipelineSpeedup = pipe0.MBPerSec / gather0.MBPerSec
	}
	if gather0.CrossCoreBytesPerStripe > 0 {
		snap.CrossCoreReduction = 1 - pipe0.CrossCoreBytesPerStripe/gather0.CrossCoreBytesPerStripe
	}

	if err := writeSnapshot(out, snap); err != nil {
		return err
	}
	if out != "-" {
		fmt.Printf("earbench: wrote %s (pipeline speedup %.2fx, cross-core bytes/stripe -%.1f%%)\n",
			out, snap.PipelineSpeedup, snap.CrossCoreReduction*100)
	}
	return nil
}
