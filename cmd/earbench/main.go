// Command earbench measures the mini-HDFS testbed and emits machine-readable
// snapshots. Three suites exist:
//
//   - datapath (default, BENCH_datapath.json): block write latency through
//     the chunked replication pipeline vs the legacy store-and-forward chain,
//     block read latency, and the encoding operation with parallel vs
//     sequential stripe gathers.
//   - erasure (BENCH_erasure.json): GF(256) kernel throughput (vectorized vs
//     scalar reference), zero-allocation stripe encode and single-block
//     reconstruction throughput, and the concurrent multi-stripe encode
//     speedup over one-stripe-at-a-time.
//   - placement (BENCH_placement.json): placement-policy ablation (EAR with
//     rollback-based incremental feasibility vs the clone-and-recompute
//     ablation vs preliminary EAR vs RR) and NameNode block-allocation
//     throughput across goroutine counts, sharded vs single-global-mutex.
//   - meta (BENCH_meta.json): the durable metadata plane — raw write-ahead
//     log append throughput per fsync policy, group-commit batching under
//     SyncAlways, the AllocateBlock overhead of write-ahead logging vs the
//     in-memory path, and restart-replay plus snapshot-restart time at
//     -replay-blocks committed blocks.
//   - encodepipe (BENCH_encodepipe.json): the RapidRAID-style pipelined
//     distributed encode vs the gather baseline on a wide (14,12) code —
//     encode MB/s and cross-core bytes per stripe across pipeline chunk
//     sizes and injected background traffic.
//   - recovery (BENCH_recovery.json): parallel full-node recovery through
//     the two-level rack-aware repair path vs the naive gather on a (9,6)
//     code packed three blocks per rack — recovery MB/s and cross-rack
//     bytes per repaired member, with and without background traffic.
//
// CI runs the suites as smoke checks; the snapshots document the speedups
// the streaming data path, the coding kernels, and the metadata plane buy.
//
// Usage:
//
//	earbench -suite datapath -out BENCH_datapath.json -writes 20 -stripes 4
//	earbench -suite erasure -out BENCH_erasure.json
//	earbench -suite placement -out BENCH_placement.json -blocks 4000
//	earbench -suite meta -out BENCH_meta.json -replay-blocks 100000
//	earbench -suite encodepipe -out BENCH_encodepipe.json -stripes 6
//	earbench -suite recovery -out BENCH_recovery.json -stripes 6
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"ear/internal/erasure"
	"ear/internal/gf256"
	"ear/internal/hdfs"
	"ear/internal/topology"
)

// benchResult is one measured scenario.
type benchResult struct {
	Name         string  `json:"name"`
	Ops          int     `json:"ops"`
	SecondsPerOp float64 `json:"seconds_per_op"`
	MBPerSec     float64 `json:"mb_per_sec"`
}

// hostInfo stamps a snapshot with the environment the numbers came from, so
// BENCH_*.json files from different machines (or kernel tiers) are
// comparable at a glance.
type hostInfo struct {
	GoVersion  string `json:"go_version"`
	GoOS       string `json:"goos"`
	GoArch     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// GF256Kernel is the fastest GF(256) kernel tier the machine dispatches
	// to: "avx2", "swar", or "scalar".
	GF256Kernel string `json:"gf256_kernel"`
}

// host captures the running environment.
func host() hostInfo {
	return hostInfo{
		GoVersion:   runtime.Version(),
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		GF256Kernel: gf256.KernelTier(),
	}
}

// snapshot is the datapath suite's emitted document.
type snapshot struct {
	GeneratedAt    string        `json:"generated_at"`
	Host           hostInfo      `json:"host"`
	BlockSizeBytes int           `json:"block_size_bytes"`
	LinkMBps       float64       `json:"link_mb_per_sec"`
	DiskMBps       float64       `json:"disk_mb_per_sec"`
	Results        []benchResult `json:"results"`
	WriteSpeedup   float64       `json:"write_speedup"`
	EncodeSpeedup  float64       `json:"encode_speedup"`
}

// kernelResult compares one slice kernel against its scalar reference.
type kernelResult struct {
	Name        string  `json:"name"`
	MBPerSec    float64 `json:"mb_per_sec"`
	RefMBPerSec float64 `json:"ref_mb_per_sec"`
	Speedup     float64 `json:"speedup"`
}

// erasureSnapshot is the erasure suite's emitted document.
type erasureSnapshot struct {
	GeneratedAt           string         `json:"generated_at"`
	Host                  hostInfo       `json:"host"`
	BufferBytes           int            `json:"buffer_bytes"`
	Kernels               []kernelResult `json:"kernels"`
	Coding                []benchResult  `json:"coding"`
	EncodeIntoAllocsPerOp float64        `json:"encode_into_allocs_per_op"`
	EncodeParallelSpeedup float64        `json:"encode_parallel_speedup"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "earbench:", err)
		os.Exit(1)
	}
}

func run() error {
	suite := flag.String("suite", "datapath", "benchmark suite: datapath, erasure, placement, meta, encodepipe, or recovery")
	out := flag.String("out", "", "snapshot output path ('-' for stdout; default BENCH_<suite>.json)")
	writes := flag.Int("writes", 20, "block writes per write/read scenario (datapath)")
	stripes := flag.Int("stripes", 4, "stripes per encode scenario")
	blocks := flag.Int("blocks", 4000, "block placements per scenario (placement, meta)")
	replayBlocks := flag.Int("replay-blocks", 100000, "committed blocks in the restart-replay scenario (meta)")
	flag.Parse()

	if *out == "" {
		*out = "BENCH_" + *suite + ".json"
	}
	switch *suite {
	case "datapath":
		return runDatapath(*out, *writes, *stripes)
	case "erasure":
		return runErasure(*out, *stripes)
	case "placement":
		return runPlacement(*out, *blocks)
	case "meta":
		return runMeta(*out, *blocks, *replayBlocks)
	case "encodepipe":
		return runEncodePipe(*out, *stripes)
	case "recovery":
		return runRecovery(*out, *stripes)
	default:
		return fmt.Errorf("unknown suite %q", *suite)
	}
}

// writeSnapshot marshals doc to the output path ('-' for stdout).
func writeSnapshot(out string, doc any) error {
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(out, buf, 0o644)
}

// measure runs fn repeatedly for a fixed wall-clock budget (after one
// warm-up call) and returns the mean seconds per op and MB/s for the given
// bytes processed per op.
func measure(bytesPerOp int, fn func()) (secondsPerOp, mbPerSec float64) {
	fn()
	const budget = 200 * time.Millisecond
	ops := 0
	t0 := time.Now()
	for time.Since(t0) < budget {
		fn()
		ops++
	}
	secondsPerOp = time.Since(t0).Seconds() / float64(ops)
	return secondsPerOp, float64(bytesPerOp) / (1 << 20) / secondsPerOp
}

// runErasure benchmarks the coding layer: slice kernels against their scalar
// references, the zero-allocation encode/reconstruct paths, and the
// concurrent multi-stripe encode.
func runErasure(out string, stripes int) error {
	const bufLen = 1 << 20
	snap := erasureSnapshot{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Host:        host(),
		BufferBytes: bufLen,
	}
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, bufLen)
	dst := make([]byte, bufLen)
	rng.Read(src)
	const coeff = 83

	kernel := func(name string, fast, ref func()) {
		_, fastMBps := measure(bufLen, fast)
		_, refMBps := measure(bufLen, ref)
		snap.Kernels = append(snap.Kernels, kernelResult{
			Name: name, MBPerSec: fastMBps, RefMBPerSec: refMBps,
			Speedup: fastMBps / refMBps,
		})
	}
	kernel("mul_slice",
		func() { gf256.MulSlice(coeff, src, dst) },
		func() { gf256.MulSliceRef(coeff, src, dst) })
	kernel("mul_add_slice",
		func() { gf256.MulAddSlice(coeff, src, dst) },
		func() { gf256.MulAddSliceRef(coeff, src, dst) })
	kernel("add_slice",
		func() { gf256.AddSlice(src, dst) },
		func() { gf256.AddSliceRef(src, dst) })

	// Zero-allocation stripe encode and single-block reconstruction on the
	// paper's RS(9,6) geometry with 1 MiB blocks.
	coder, err := erasure.New(9, 6, erasure.ReedSolomon)
	if err != nil {
		return err
	}
	data := make([][]byte, coder.K())
	for i := range data {
		data[i] = make([]byte, bufLen)
		rng.Read(data[i])
	}
	parity := make([][]byte, coder.M())
	for i := range parity {
		parity[i] = make([]byte, bufLen)
	}
	encSecs, encMBps := measure(coder.K()*bufLen, func() {
		if err := coder.EncodeInto(data, parity); err != nil {
			panic(err)
		}
	})
	snap.Coding = append(snap.Coding, benchResult{
		Name: "encode_into_rs_9_6", Ops: 1, SecondsPerOp: encSecs, MBPerSec: encMBps,
	})
	snap.EncodeIntoAllocsPerOp = testing.AllocsPerRun(10, func() {
		if err := coder.EncodeInto(data, parity); err != nil {
			panic(err)
		}
	})

	stripe, err := coder.EncodeStripe(data)
	if err != nil {
		return err
	}
	present := make(map[int][]byte)
	for i, b := range stripe {
		if i != 0 && i != 7 {
			present[i] = b
		}
	}
	recOut := make([]byte, bufLen)
	recSecs, recMBps := measure(coder.K()*bufLen, func() {
		if err := coder.ReconstructBlockInto(present, 0, recOut); err != nil {
			panic(err)
		}
	})
	snap.Coding = append(snap.Coding, benchResult{
		Name: "reconstruct_block_into_rs_9_6", Ops: 1, SecondsPerOp: recSecs, MBPerSec: recMBps,
	})

	// Concurrent multi-stripe encode on the shaped testbed: all stripes in
	// one map task, EncodeParallelism vs one stripe at a time.
	var parSecs, seqSecs float64
	for _, par := range []int{4, 1} {
		secs, stats, err := encodeAllOnce(par, 2*stripes)
		if err != nil {
			return err
		}
		if par == 1 {
			seqSecs = secs
		} else {
			parSecs = secs
		}
		stripeMB := float64(stats.EncodedBytes) / float64(stats.Stripes) / (1 << 20)
		snap.Coding = append(snap.Coding, benchResult{
			Name: fmt.Sprintf("encode_all_parallelism_%d", par), Ops: stats.Stripes,
			SecondsPerOp: secs, MBPerSec: stripeMB / secs,
		})
	}
	if parSecs > 0 {
		snap.EncodeParallelSpeedup = seqSecs / parSecs
	}

	if err := writeSnapshot(out, snap); err != nil {
		return err
	}
	if out != "-" {
		fmt.Printf("earbench: wrote %s (mul_slice speedup %.2fx, encode_into %.0f MB/s, %.0f allocs/op, parallel encode speedup %.2fx)\n",
			out, snap.Kernels[0].Speedup, encMBps, snap.EncodeIntoAllocsPerOp, snap.EncodeParallelSpeedup)
	}
	return nil
}

// encodeAllOnce writes nStripes full stripes into a fresh cluster whose
// encode job runs as a single map task with the given stripe parallelism,
// and returns the mean encode seconds per stripe.
func encodeAllOnce(parallelism, nStripes int) (secondsPerStripe float64, stats hdfs.EncodeStats, err error) {
	cfg := hdfs.Config{
		Racks:                    6,
		NodesPerRack:             3,
		Policy:                   "ear",
		Replicas:                 3,
		K:                        4,
		N:                        6,
		C:                        1,
		BlockSizeBytes:           512 << 10,
		BandwidthBytesPerSec:     64 << 20,
		DiskBandwidthBytesPerSec: 64 << 20,
		MapTasks:                 1,
		EncodeParallelism:        parallelism,
		Seed:                     1,
	}
	c, err := hdfs.NewCluster(cfg)
	if err != nil {
		return 0, hdfs.EncodeStats{}, err
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, cfg.BlockSizeBytes)
	for i := 0; i < nStripes*cfg.K; i++ {
		rng.Read(data)
		client := topology.NodeID(rng.Intn(c.Topology().Nodes()))
		if _, err := c.WriteBlock(client, data); err != nil {
			return 0, hdfs.EncodeStats{}, err
		}
	}
	c.NameNode().FlushOpenStripes()
	t0 := time.Now()
	stats, err = c.RaidNode().EncodeAll()
	if err != nil {
		return 0, stats, err
	}
	if stats.Stripes == 0 {
		return 0, stats, fmt.Errorf("no stripes encoded")
	}
	return time.Since(t0).Seconds() / float64(stats.Stripes), stats, nil
}

// runDatapath benchmarks the client data path on the shaped fabric.
func runDatapath(out string, writes, stripes int) error {
	cfg := hdfs.Config{
		Racks:                    6,
		NodesPerRack:             3,
		Policy:                   "ear",
		Replicas:                 3,
		K:                        4,
		N:                        6,
		C:                        1,
		BlockSizeBytes:           512 << 10,
		BandwidthBytesPerSec:     64 << 20,
		DiskBandwidthBytesPerSec: 64 << 20,
		MapTasks:                 4,
		Seed:                     1,
	}
	snap := snapshot{
		GeneratedAt:    time.Now().UTC().Format(time.RFC3339),
		Host:           host(),
		BlockSizeBytes: cfg.BlockSizeBytes,
		LinkMBps:       cfg.BandwidthBytesPerSec / (1 << 20),
		DiskMBps:       cfg.DiskBandwidthBytesPerSec / (1 << 20),
	}
	blockMB := float64(cfg.BlockSizeBytes) / (1 << 20)

	var writeSeq, writePipe, encSeq, encPipe float64
	for _, mode := range []struct {
		suffix     string
		sequential bool
	}{{"pipelined", false}, {"sequential", true}} {
		mcfg := cfg
		mcfg.SequentialDataPath = mode.sequential

		// Write path.
		c, err := hdfs.NewCluster(mcfg)
		if err != nil {
			return err
		}
		data := make([]byte, mcfg.BlockSizeBytes)
		rand.New(rand.NewSource(1)).Read(data)
		t0 := time.Now()
		for i := 0; i < writes; i++ {
			if _, err := c.WriteBlock(0, data); err != nil {
				c.Close()
				return err
			}
		}
		perOp := time.Since(t0).Seconds() / float64(writes)
		snap.Results = append(snap.Results, benchResult{
			Name: "write_block_" + mode.suffix, Ops: writes,
			SecondsPerOp: perOp, MBPerSec: blockMB / perOp,
		})
		if mode.sequential {
			writeSeq = perOp
		} else {
			writePipe = perOp
		}
		c.Close()

		// Encode path (downloads k blocks per stripe, uploads n-k parities).
		c, err = hdfs.NewCluster(mcfg)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < stripes*mcfg.K; i++ {
			rng.Read(data)
			client := topology.NodeID(rng.Intn(c.Topology().Nodes()))
			if _, err := c.WriteBlock(client, data); err != nil {
				c.Close()
				return err
			}
		}
		c.NameNode().FlushOpenStripes()
		t0 = time.Now()
		stats, err := c.RaidNode().EncodeAll()
		if err != nil {
			c.Close()
			return err
		}
		perOp = time.Since(t0).Seconds() / float64(stats.Stripes)
		snap.Results = append(snap.Results, benchResult{
			Name: "encode_stripe_" + mode.suffix, Ops: stats.Stripes,
			SecondsPerOp: perOp, MBPerSec: blockMB * float64(mcfg.K) / perOp,
		})
		if mode.sequential {
			encSeq = perOp
		} else {
			encPipe = perOp
		}
		c.Close()
	}

	// Read path (pipelining does not apply: single replica fetch).
	c, err := hdfs.NewCluster(cfg)
	if err != nil {
		return err
	}
	data := make([]byte, cfg.BlockSizeBytes)
	rand.New(rand.NewSource(3)).Read(data)
	id, err := c.WriteBlock(0, data)
	if err != nil {
		c.Close()
		return err
	}
	t0 := time.Now()
	for i := 0; i < writes; i++ {
		if _, err := c.ReadBlock(topology.NodeID(i%c.Topology().Nodes()), id); err != nil {
			c.Close()
			return err
		}
	}
	perOp := time.Since(t0).Seconds() / float64(writes)
	snap.Results = append(snap.Results, benchResult{
		Name: "read_block", Ops: writes,
		SecondsPerOp: perOp, MBPerSec: blockMB / perOp,
	})
	c.Close()

	if writePipe > 0 {
		snap.WriteSpeedup = writeSeq / writePipe
	}
	if encPipe > 0 {
		snap.EncodeSpeedup = encSeq / encPipe
	}

	if err := writeSnapshot(out, snap); err != nil {
		return err
	}
	if out != "-" {
		fmt.Printf("earbench: wrote %s (write speedup %.2fx, encode speedup %.2fx)\n",
			out, snap.WriteSpeedup, snap.EncodeSpeedup)
	}
	return nil
}
