// Command earbench measures the client data path on the shaped fabric and
// emits a machine-readable snapshot (BENCH_datapath.json by default): block
// write latency through the chunked replication pipeline vs the legacy
// store-and-forward chain, block read latency, and the encoding operation
// with parallel vs sequential stripe gathers. CI runs it as a smoke check;
// the snapshot documents the speedups the streaming data path buys.
//
// Usage:
//
//	earbench -out BENCH_datapath.json -writes 20 -stripes 4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"ear/internal/hdfs"
	"ear/internal/topology"
)

// benchResult is one measured scenario.
type benchResult struct {
	Name         string  `json:"name"`
	Ops          int     `json:"ops"`
	SecondsPerOp float64 `json:"seconds_per_op"`
	MBPerSec     float64 `json:"mb_per_sec"`
}

// snapshot is the emitted document.
type snapshot struct {
	GeneratedAt    string        `json:"generated_at"`
	BlockSizeBytes int           `json:"block_size_bytes"`
	LinkMBps       float64       `json:"link_mb_per_sec"`
	DiskMBps       float64       `json:"disk_mb_per_sec"`
	Results        []benchResult `json:"results"`
	WriteSpeedup   float64       `json:"write_speedup"`
	EncodeSpeedup  float64       `json:"encode_speedup"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "earbench:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "BENCH_datapath.json", "snapshot output path ('-' for stdout)")
	writes := flag.Int("writes", 20, "block writes per write/read scenario")
	stripes := flag.Int("stripes", 4, "stripes per encode scenario")
	flag.Parse()

	cfg := hdfs.Config{
		Racks:                    6,
		NodesPerRack:             3,
		Policy:                   "ear",
		Replicas:                 3,
		K:                        4,
		N:                        6,
		C:                        1,
		BlockSizeBytes:           512 << 10,
		BandwidthBytesPerSec:     64 << 20,
		DiskBandwidthBytesPerSec: 64 << 20,
		MapTasks:                 4,
		Seed:                     1,
	}
	snap := snapshot{
		GeneratedAt:    time.Now().UTC().Format(time.RFC3339),
		BlockSizeBytes: cfg.BlockSizeBytes,
		LinkMBps:       cfg.BandwidthBytesPerSec / (1 << 20),
		DiskMBps:       cfg.DiskBandwidthBytesPerSec / (1 << 20),
	}
	blockMB := float64(cfg.BlockSizeBytes) / (1 << 20)

	var writeSeq, writePipe, encSeq, encPipe float64
	for _, mode := range []struct {
		suffix     string
		sequential bool
	}{{"pipelined", false}, {"sequential", true}} {
		mcfg := cfg
		mcfg.SequentialDataPath = mode.sequential

		// Write path.
		c, err := hdfs.NewCluster(mcfg)
		if err != nil {
			return err
		}
		data := make([]byte, mcfg.BlockSizeBytes)
		rand.New(rand.NewSource(1)).Read(data)
		t0 := time.Now()
		for i := 0; i < *writes; i++ {
			if _, err := c.WriteBlock(0, data); err != nil {
				c.Close()
				return err
			}
		}
		perOp := time.Since(t0).Seconds() / float64(*writes)
		snap.Results = append(snap.Results, benchResult{
			Name: "write_block_" + mode.suffix, Ops: *writes,
			SecondsPerOp: perOp, MBPerSec: blockMB / perOp,
		})
		if mode.sequential {
			writeSeq = perOp
		} else {
			writePipe = perOp
		}
		c.Close()

		// Encode path (downloads k blocks per stripe, uploads n-k parities).
		c, err = hdfs.NewCluster(mcfg)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < *stripes*mcfg.K; i++ {
			rng.Read(data)
			client := topology.NodeID(rng.Intn(c.Topology().Nodes()))
			if _, err := c.WriteBlock(client, data); err != nil {
				c.Close()
				return err
			}
		}
		c.NameNode().FlushOpenStripes()
		t0 = time.Now()
		stats, err := c.RaidNode().EncodeAll()
		if err != nil {
			c.Close()
			return err
		}
		perOp = time.Since(t0).Seconds() / float64(stats.Stripes)
		snap.Results = append(snap.Results, benchResult{
			Name: "encode_stripe_" + mode.suffix, Ops: stats.Stripes,
			SecondsPerOp: perOp, MBPerSec: blockMB * float64(mcfg.K) / perOp,
		})
		if mode.sequential {
			encSeq = perOp
		} else {
			encPipe = perOp
		}
		c.Close()
	}

	// Read path (pipelining does not apply: single replica fetch).
	c, err := hdfs.NewCluster(cfg)
	if err != nil {
		return err
	}
	data := make([]byte, cfg.BlockSizeBytes)
	rand.New(rand.NewSource(3)).Read(data)
	id, err := c.WriteBlock(0, data)
	if err != nil {
		c.Close()
		return err
	}
	t0 := time.Now()
	for i := 0; i < *writes; i++ {
		if _, err := c.ReadBlock(topology.NodeID(i%c.Topology().Nodes()), id); err != nil {
			c.Close()
			return err
		}
	}
	perOp := time.Since(t0).Seconds() / float64(*writes)
	snap.Results = append(snap.Results, benchResult{
		Name: "read_block", Ops: *writes,
		SecondsPerOp: perOp, MBPerSec: blockMB / perOp,
	})
	c.Close()

	if writePipe > 0 {
		snap.WriteSpeedup = writeSeq / writePipe
	}
	if encPipe > 0 {
		snap.EncodeSpeedup = encSeq / encPipe
	}

	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("earbench: wrote %s (write speedup %.2fx, encode speedup %.2fx)\n",
		*out, snap.WriteSpeedup, snap.EncodeSpeedup)
	return nil
}
