package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"ear/internal/hdfs"
	"ear/internal/placement"
	"ear/internal/telemetry"
	"ear/internal/topology"
)

// policyResult is one placement-policy ablation row: the single-threaded cost
// of deciding one block's replica layout, and how many candidate layouts the
// policy generated per block on average (Theorem 1's iteration count).
type policyResult struct {
	Policy         string  `json:"policy"`
	Blocks         int     `json:"blocks"`
	NsPerBlock     float64 `json:"ns_per_block"`
	MeanIterations float64 `json:"mean_iterations"`
}

// allocResult is one NameNode allocation-throughput row.
type allocResult struct {
	Mode       string  `json:"mode"` // sharded | serialized | seed
	Goroutines int     `json:"goroutines"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	NsPerOp    float64 `json:"ns_per_op"`
}

// placementSnapshot is the placement suite's emitted document.
type placementSnapshot struct {
	GeneratedAt  string   `json:"generated_at"`
	Host         hostInfo `json:"host"`
	Racks        int      `json:"racks"`
	NodesPerRack int      `json:"nodes_per_rack"`
	Replicas     int      `json:"replicas"`
	K            int      `json:"k"`
	N            int      `json:"n"`
	C            int      `json:"c"`
	// Ablation compares the placement policies single-threaded: incremental
	// EAR vs the clone-and-recompute ablation vs preliminary EAR vs RR.
	Ablation []policyResult `json:"ablation"`
	// Alloc measures NameNode.AllocateBlock throughput across goroutine
	// counts for the sharded path, the same path behind one global mutex
	// (serialized), and the full seed emulation (serialized + full
	// recompute per candidate).
	Alloc []allocResult `json:"alloc"`
	// AllocSpeedupVsSeed is sharded vs seed ns/op at the highest measured
	// goroutine count.
	AllocSpeedupVsSeed float64 `json:"alloc_speedup_vs_seed"`
	// IncrementalSpeedup is the single-threaded ablation ratio:
	// ear-fullrecompute ns/block over ear ns/block.
	IncrementalSpeedup float64 `json:"incremental_speedup"`
	// AttemptNsMean and AllocOps read back the namenode_alloc_ops counter
	// and placement_attempt_ns histogram the sharded run published.
	AttemptNsMean float64 `json:"attempt_ns_mean"`
	AllocOps      float64 `json:"alloc_ops"`
}

// placementBenchConfig is the suite's cluster geometry: 16 racks of 8 nodes,
// the paper's RS(9,6) with 3-way replication.
func placementBenchConfig() (placement.Config, error) {
	top, err := topology.New(16, 8)
	if err != nil {
		return placement.Config{}, err
	}
	return placement.Config{Topology: top, Replicas: 3, K: 6, N: 9, C: 1}, nil
}

// runPlacement benchmarks the placement and metadata hot path.
func runPlacement(out string, blocks int) error {
	cfg, err := placementBenchConfig()
	if err != nil {
		return err
	}
	snap := placementSnapshot{
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		Host:         host(),
		Racks:        cfg.Topology.Racks(),
		NodesPerRack: cfg.Topology.Nodes() / cfg.Topology.Racks(),
		Replicas:     cfg.Replicas,
		K:            cfg.K,
		N:            cfg.N,
		C:            cfg.C,
	}

	// Policy ablation, single-threaded.
	variants := []struct {
		name string
		mut  func(*placement.Config)
	}{
		{"ear", func(*placement.Config) {}},
		{"ear-fullrecompute", func(c *placement.Config) { c.FullRecompute = true }},
		{"ear-preliminary", func(c *placement.Config) { c.Preliminary = true }},
		{"rr", nil},
	}
	var earNs, fullNs float64
	for _, v := range variants {
		var pol placement.Policy
		if v.mut == nil {
			pol, err = placement.NewRandom(cfg, rand.New(rand.NewSource(1)))
		} else {
			vcfg := cfg
			v.mut(&vcfg)
			pol, err = placement.NewEAR(vcfg, rand.New(rand.NewSource(1)))
		}
		if err != nil {
			return err
		}
		iters := 0
		t0 := time.Now()
		for b := 0; b < blocks; b++ {
			if _, err := pol.Place(topology.BlockID(b)); err != nil {
				return err
			}
			if ac, ok := pol.(interface{ LastPlaceAttempts() int }); ok {
				iters += ac.LastPlaceAttempts()
			} else {
				iters++
			}
			pol.TakeSealed()
		}
		ns := float64(time.Since(t0).Nanoseconds()) / float64(blocks)
		snap.Ablation = append(snap.Ablation, policyResult{
			Policy: v.name, Blocks: blocks, NsPerBlock: ns,
			MeanIterations: float64(iters) / float64(blocks),
		})
		switch v.name {
		case "ear":
			earNs = ns
		case "ear-fullrecompute":
			fullNs = ns
		}
	}
	if earNs > 0 {
		snap.IncrementalSpeedup = fullNs / earNs
	}

	// NameNode allocation throughput across goroutine counts.
	gs := goroutineCounts()
	maxG := gs[len(gs)-1]
	var shardedNs, seedNs float64
	for _, mode := range []struct {
		name      string
		serialize bool
		recompute bool
	}{
		{"sharded", false, false},
		{"serialized", true, false},
		{"seed", true, true},
	} {
		for _, g := range gs {
			ncfg := cfg
			ncfg.FullRecompute = mode.recompute
			nn, err := hdfs.NewShardedNameNode(ncfg, "ear", 1, mode.serialize)
			if err != nil {
				return err
			}
			var reg *telemetry.Registry
			if mode.name == "sharded" && g == maxG {
				reg = telemetry.NewRegistry()
				nn.SetTelemetry(reg)
			}
			secs, err := allocHammer(nn, g, blocks)
			if err != nil {
				return err
			}
			snap.Alloc = append(snap.Alloc, allocResult{
				Mode: mode.name, Goroutines: g,
				OpsPerSec: float64(blocks) / secs,
				NsPerOp:   secs * 1e9 / float64(blocks),
			})
			if g == maxG {
				switch mode.name {
				case "sharded":
					shardedNs = secs * 1e9 / float64(blocks)
				case "seed":
					seedNs = secs * 1e9 / float64(blocks)
				}
			}
			if reg != nil {
				snap.AllocOps = reg.Counter("namenode_alloc_ops",
					"Block allocations served by the NameNode.").With().Value()
				snap.AttemptNsMean = reg.Histogram("placement_attempt_ns",
					"Cost of one candidate-layout placement attempt (nanoseconds).",
					nil).With().Mean()
			}
		}
	}
	if shardedNs > 0 {
		snap.AllocSpeedupVsSeed = seedNs / shardedNs
	}

	if err := writeSnapshot(out, snap); err != nil {
		return err
	}
	if out != "-" {
		fmt.Printf("earbench: wrote %s (incremental flow speedup %.2fx, alloc speedup vs seed %.2fx at %d goroutines, attempt mean %.0f ns)\n",
			out, snap.IncrementalSpeedup, snap.AllocSpeedupVsSeed, maxG, snap.AttemptNsMean)
	}
	return nil
}

// goroutineCounts returns the sorted, deduplicated set of goroutine counts to
// measure: 1, 2, 4, and GOMAXPROCS.
func goroutineCounts() []int {
	set := map[int]bool{1: true, 2: true, 4: true, runtime.GOMAXPROCS(0): true}
	var gs []int
	for g := range set {
		gs = append(gs, g)
	}
	sort.Ints(gs)
	return gs
}

// allocHammer splits `total` AllocateBlock calls across g goroutines and
// returns the wall-clock seconds for the whole batch.
func allocHammer(nn *hdfs.NameNode, g, total int) (float64, error) {
	var wg sync.WaitGroup
	errs := make([]error, g)
	per := total / g
	t0 := time.Now()
	for i := 0; i < g; i++ {
		n := per
		if i == g-1 {
			n = total - per*(g-1)
		}
		wg.Add(1)
		go func(slot, n int) {
			defer wg.Done()
			for j := 0; j < n; j++ {
				if _, err := nn.AllocateBlock(1); err != nil {
					errs[slot] = err
					return
				}
			}
		}(i, n)
	}
	wg.Wait()
	secs := time.Since(t0).Seconds()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return secs, nil
}
