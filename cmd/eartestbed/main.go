// Command eartestbed runs the paper's testbed experiments (Section V-A) on
// the mini-HDFS cluster with a bandwidth-shaped fabric: A.1 measures raw
// encoding throughput across codes and under injected cross traffic
// (Figure 8), A.2 measures the impact of encoding on concurrent writes
// (Figure 9), and A.3 replays a SWIM-style MapReduce workload (Figure 10).
//
// The testbed is scaled: 256 KiB blocks and proportionally scaled links
// stand in for the paper's 64 MB blocks on 1 Gb/s Ethernet, so shapes and
// ratios are preserved while runs finish in seconds.
//
// Usage:
//
//	eartestbed -exp a1 -stripes 24
//	eartestbed -exp a1udp
//	eartestbed -exp a2
//	eartestbed -exp a3 -jobs 50
//	eartestbed -exp encodewindow
//
// The "encodewindow" experiment measures how much the pipelined distributed
// encode shrinks the encode window — the wall-clock span during which
// stripes sit between replication and full parity protection — under
// injected background traffic, with the pipeline knob off and on.
//
// The "nodefail" experiment is the node-failure recovery smoke: it encodes
// stripes on a multi-node-rack EAR cluster, kills the node holding the most
// stripe members, and runs the parallel two-level recovery driver with the
// invariant auditor and the transition progress tracker attached — the run
// fails unless every lost member is repaired, no metadata references the
// dead node, the auditor ends with no ongoing violations, and the
// durability-exposure ledger closes to zero:
//
//	eartestbed -exp nodefail -stripes 6
//
// The "transition" experiment drives a full replication-to-erasure-coding
// transition under both policies with the whole observability plane
// attached: the progress tracker must reach 100% encoded with no residual
// at-risk blocks, its durability-exposure windows must agree with the
// invariant auditor, and per-tenant byte attribution (writes are spread
// across -tenant-count tenants) must reproduce the fabric's byte totals:
//
//	eartestbed -exp transition -tenant-count 3
//
// With -progress, every cluster any experiment builds gets a transition
// progress tracker and the final reports (encode backlog, ETA, durability
// exposure windows) are written as JSON; with -tenants, every cluster's
// per-tenant accounting snapshot is written as JSON:
//
//	eartestbed -exp a1 -audit -progress progress.json -tenants tenants.json
//
// With -trace, the encode jobs' span timeline is written as Chrome trace
// JSON, loadable in chrome://tracing or https://ui.perfetto.dev (the buffer
// is also flushed on SIGINT/SIGTERM, so an interrupted run still yields a
// trace). With -require-trace N, the run exits nonzero unless the span
// buffer holds at least N traces that cross a component boundary (client,
// namenode, datanode, raidnode) — the CI assertion that trace propagation
// stays wired end to end. With -audit, every cluster the experiment builds
// gets an event journal plus an invariant auditor, and the run exits
// nonzero if any placement invariant was violated. With -timeline,
// per-link fabric utilization is sampled and written as JSON; with
// -health, every cluster runs the slow-node health monitor and the final
// per-node scores are written as JSON:
//
//	eartestbed -exp a1 -trace out.json -require-trace 1
//	eartestbed -exp a1 -audit -timeline timeline.json -health health.json
//
// The "crash" experiment is the durable-metadata-plane scenario and runs in
// two invocations sharing -meta-dir: the first populates an EAR cluster,
// starts encoding, and SIGKILLs its own process the moment the first stripe
// reports encoded (so the run dies mid-transition with exit code 137); the
// second recovers the metadata plane from the write-ahead log, audits the
// recovered layout, requeues the interrupted encodings, and serves fresh
// writes:
//
//	eartestbed -exp crash -crash-phase run -meta-dir /tmp/earmeta   # exits 137
//	eartestbed -exp crash -crash-phase recover -meta-dir /tmp/earmeta
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"ear/internal/experiments"
	"ear/internal/stats"
	"ear/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "eartestbed:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp        = flag.String("exp", "a1", `experiment: "a1", "a1udp", "a2", "a3", "encodewindow", "transition", "recovery", "nodefail", or "crash"`)
		stripes    = flag.Int("stripes", 24, "stripes per encoding run (paper: 96)")
		jobs       = flag.Int("jobs", 50, "SWIM jobs in A.3")
		rate       = flag.Float64("writerate", 4, "A.2 write arrival rate (req/s)")
		lead       = flag.Duration("lead", 2*time.Second, "A.2 write lead time before encoding")
		series     = flag.Bool("series", false, "print the A.2 write-response series")
		seed       = flag.Int64("seed", 1, "random seed")
		traceOut   = flag.String("trace", "", "write the encode-path span timeline to this file as Chrome trace JSON")
		traceMin   = flag.Int("require-trace", 0, "exit nonzero unless at least N traces cross a component boundary")
		auditRun   = flag.Bool("audit", false, "run the invariant auditor over every cluster; exit nonzero on any violation")
		auditOut   = flag.String("audit-out", "", "also write the audit reports to this file as JSON (implies -audit)")
		timeline   = flag.String("timeline", "", "write the per-link fabric utilization timeline to this file as JSON")
		healthMon  = flag.String("health", "", "run the health monitor on every cluster and write final per-node scores to this file as JSON")
		progOut    = flag.String("progress", "", "run the transition progress tracker on every cluster and write final reports (backlog, ETA, durability exposure) to this file as JSON")
		tenantsOut = flag.String("tenants", "", "write every cluster's per-tenant resource accounting snapshot to this file as JSON")
		tenantN    = flag.Int("tenant-count", 3, "distinct tenants the transition experiment spreads its writes across")
		metaDir    = flag.String("meta-dir", "", "durable metadata-plane directory (required by -exp crash)")
		crashPhase = flag.String("crash-phase", "run", `crash experiment phase: "run" (dies by SIGKILL) or "recover"`)
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn or error")
	)
	flag.Parse()
	if *auditOut != "" {
		*auditRun = true
	}

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", *logLevel)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})))

	var tracer *telemetry.Tracer
	if *traceOut != "" || *traceMin > 0 {
		tracer = telemetry.NewTracer()
	}
	base := experiments.TestbedOptions{Stripes: *stripes, Seed: *seed, Tracer: tracer}

	obs := &clusterObserver{
		start:    time.Now(),
		audit:    *auditRun,
		timeline: *timeline != "",
		health:   *healthMon != "",
		progress: *progOut != "",
		tenants:  *tenantsOut != "",
	}
	if obs.active() {
		base.ClusterHook = obs.hook
	}

	// flushTrace writes the span buffer exactly once; it runs on the normal
	// exit path and from the signal handler, so an interrupted run (SIGINT /
	// SIGTERM mid-experiment) still yields a loadable trace file.
	var traceOnce sync.Once
	flushTrace := func() {
		if *traceOut == "" {
			return
		}
		traceOnce.Do(func() {
			f, err := os.Create(*traceOut)
			if err != nil {
				slog.Error("trace create failed", "err", err)
				return
			}
			if err := tracer.WriteChromeTrace(f); err != nil {
				slog.Error("trace write failed", "err", err)
				f.Close()
				return
			}
			if err := f.Close(); err != nil {
				slog.Error("trace close failed", "err", err)
				return
			}
			slog.Info("trace written", "path", *traceOut, "spans", len(tracer.Spans()))
		})
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s, ok := <-sig
		if !ok {
			return
		}
		slog.Warn("interrupted, flushing trace buffer", "signal", s)
		flushTrace()
		os.Exit(1)
	}()

	slog.Info("running experiment", "exp", *exp, "stripes", *stripes, "seed", *seed)
	start := time.Now()
	switch *exp {
	case "a1":
		t, err := experiments.RunA1(base)
		if err != nil {
			return err
		}
		fmt.Println(t)
	case "a1udp":
		t, err := experiments.RunA1UDP(base)
		if err != nil {
			return err
		}
		fmt.Println(t)
	case "a2":
		res, err := experiments.RunA2(experiments.A2Options{
			TestbedOptions: base,
			WriteRate:      *rate,
			LeadTime:       *lead,
		})
		if err != nil {
			return err
		}
		fmt.Println(res.Summary)
		if *series {
			for _, s := range []*stats.Series{res.RRSeries, res.EARSeries} {
				// The paper plots the mean of three consecutive writes.
				smoothed, err := s.Smooth(3)
				if err != nil {
					return err
				}
				fmt.Printf("-- %s write responses (t, seconds) --\n", s.Name)
				for _, p := range smoothed.Points {
					fmt.Printf("%.2f\t%.3f\n", p.T, p.V)
				}
			}
		}
	case "a3":
		res, err := experiments.RunA3(experiments.A3Options{TestbedOptions: base, Jobs: *jobs})
		if err != nil {
			return err
		}
		fmt.Println(res.Summary)
	case "encodewindow":
		res, err := experiments.RunEncodeWindow(base)
		if err != nil {
			return err
		}
		fmt.Println(res.Summary)
	case "transition":
		res, err := experiments.RunTransition(experiments.TransitionOptions{
			TestbedOptions: base,
			Tenants:        *tenantN,
		})
		if err != nil {
			return err
		}
		fmt.Println(res.Summary)
	case "recovery":
		t, err := experiments.RunRecovery(experiments.RecoveryOptions{Stripes: *stripes / 3, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Println(t)
	case "nodefail":
		nf := base
		nf.RackAwareRepair = true
		res, err := experiments.RunNodeFail(nf)
		if err != nil {
			return err
		}
		fmt.Println(res.Summary)
	case "crash":
		copts := experiments.CrashOptions{TestbedOptions: base, MetaDir: *metaDir}
		switch *crashPhase {
		case "run":
			err := experiments.RunCrashRun(copts, func() error {
				slog.Info("first stripe encoded; killing the process mid-transition")
				return syscall.Kill(syscall.Getpid(), syscall.SIGKILL)
			})
			if err != nil {
				return err
			}
			// A returned SIGKILL means the signal was not delivered.
			return fmt.Errorf("crash run phase survived its own SIGKILL")
		case "recover":
			rep, err := experiments.RunCrashRecover(copts)
			if err != nil {
				return err
			}
			fmt.Println(rep)
		default:
			return fmt.Errorf("unknown -crash-phase %q (want run or recover)", *crashPhase)
		}
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	slog.Debug("experiment finished", "elapsed", time.Since(start))
	signal.Stop(sig)
	close(sig)
	flushTrace()

	if *traceMin > 0 {
		got := telemetry.MultiComponentTraces(tracer.Spans())
		if got < *traceMin {
			return fmt.Errorf("trace check: %d multi-component trace(s), want >= %d — trace propagation is broken somewhere between client, namenode, datanode and raidnode", got, *traceMin)
		}
		slog.Info("trace check passed", "multi_component_traces", got, "required", *traceMin)
	}
	if *timeline != "" {
		tl := obs.mergedTimeline()
		if err := writeJSONFile(*timeline, tl); err != nil {
			return fmt.Errorf("timeline write: %w", err)
		}
		slog.Info("timeline written", "path", *timeline, "links", len(tl.Links))
	}
	if *healthMon != "" {
		if err := obs.writeHealthJSON(*healthMon); err != nil {
			return fmt.Errorf("health write: %w", err)
		}
		slog.Info("health report written", "path", *healthMon)
	}
	if *progOut != "" {
		if err := obs.writeProgressJSON(*progOut); err != nil {
			return fmt.Errorf("progress write: %w", err)
		}
		slog.Info("progress report written", "path", *progOut)
	}
	if *tenantsOut != "" {
		if err := obs.writeTenantsJSON(*tenantsOut); err != nil {
			return fmt.Errorf("tenants write: %w", err)
		}
		slog.Info("tenant accounting written", "path", *tenantsOut)
	}
	if *auditRun {
		if *auditOut != "" {
			if err := obs.writeAuditJSON(*auditOut); err != nil {
				return fmt.Errorf("audit write: %w", err)
			}
			slog.Info("audit report written", "path", *auditOut)
		}
		if err := obs.auditReport(); err != nil {
			return err
		}
	}
	return nil
}
