package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"ear/internal/events"
	"ear/internal/events/audit"
	"ear/internal/fabric"
	"ear/internal/hdfs"
	"ear/internal/progress"
	"ear/internal/tenant"
)

// clusterObserver instruments every cluster an experiment builds (testbed
// experiments build one per policy or per code): with -audit each cluster
// gets an event journal plus an invariant auditor, with -timeline each
// cluster's fabric is sampled and the per-cluster timelines are merged on
// the run's wall clock so the output reads as one experiment-wide series,
// and with -health each cluster runs a background health monitor whose
// final per-node scores are dumped at the end.
type clusterObserver struct {
	start    time.Time
	audit    bool
	timeline bool
	health   bool
	progress bool
	tenants  bool

	mu        sync.Mutex
	auditors  []*audit.Auditor
	labels    []string
	policies  []string
	samplers  []*fabric.Sampler
	offsets   []float64
	monitors  []*hdfs.HealthMonitor
	monLabels []string
	trackers  []*progress.Tracker
	trkLabels []string
	tables    []*tenant.Table
	tabLabels []string
}

// active reports whether the observer has anything to do.
func (o *clusterObserver) active() bool {
	return o.audit || o.timeline || o.health || o.progress || o.tenants
}

// hook is the TestbedOptions.ClusterHook: called once per cluster built.
func (o *clusterObserver) hook(c *hdfs.Cluster) {
	cfg := c.Config()
	label := fmt.Sprintf("%s (%d,%d)", cfg.Policy, cfg.N, cfg.K)
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.audit || o.health || o.progress {
		// The auditor, the health monitor and the progress tracker all feed
		// off the journal.
		j := events.NewJournal(0)
		c.SetJournal(j)
		if o.audit {
			a := audit.New(c.Topology(), audit.Config{
				Replicas:      cfg.Replicas,
				C:             cfg.C,
				CheckCoreRack: cfg.Policy == "ear",
			})
			a.Attach(j)
			o.auditors = append(o.auditors, a)
			o.labels = append(o.labels, label)
			o.policies = append(o.policies, cfg.Policy)
		}
		if o.health {
			m := hdfs.NewHealthMonitor(c, hdfs.HealthConfig{})
			m.Start()
			o.monitors = append(o.monitors, m)
			o.monLabels = append(o.monLabels, label)
		}
		if o.progress {
			p := progress.New(progress.Config{Replicas: cfg.Replicas, Policy: cfg.Policy})
			p.Attach(j)
			o.trackers = append(o.trackers, p)
			o.trkLabels = append(o.trkLabels, label)
		}
	}
	if o.tenants {
		o.tables = append(o.tables, c.Tenants())
		o.tabLabels = append(o.tabLabels, label)
	}
	if o.timeline {
		s := fabric.NewSampler(c.Fabric(), 0)
		s.Start()
		o.samplers = append(o.samplers, s)
		o.offsets = append(o.offsets, time.Since(o.start).Seconds())
	}
}

// auditReport prints one summary line per cluster and every violation, then
// applies the paper's reliability claim as the pass/fail bar: an EAR
// cluster must be clean outright — no violation, not even a transient one,
// because EAR's whole point is that the transition to erasure coding never
// opens a fault-tolerance window — while an RR baseline cluster must only
// *converge* (no violation still ongoing at the end of the run; the
// transient misplacement-then-relocation windows are RR's designed
// behavior and are reported, not failed). Any failure makes the process
// exit nonzero, which is what CI keys on.
func (o *clusterObserver) auditReport() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	failures := 0
	for i, a := range o.auditors {
		r := a.Report()
		fmt.Printf("audit %-16s events=%d blocks=%d stripes=%d encoded=%d ongoing=%d transient=%d clean=%v\n",
			o.labels[i], r.Events, r.Blocks, r.Stripes, r.Encoded,
			len(r.Ongoing), len(r.Transient), r.Clean)
		for _, v := range append(append([]audit.Violation(nil), r.Ongoing...), r.Transient...) {
			state := "ONGOING"
			if v.Transient() {
				state = "transient"
			}
			fmt.Printf("  %-9s %-22s stripe=%d block=%d seq=[%d..%d] resolved=%d %s\n",
				state, v.Invariant, v.Stripe, v.Block, v.OpenedSeq, v.LastSeq, v.ResolvedSeq, v.Detail)
		}
		switch {
		case o.policies[i] == "ear" && r.Total() > 0:
			failures += r.Total()
		case len(r.Ongoing) > 0:
			failures += len(r.Ongoing)
		}
	}
	if failures > 0 {
		return fmt.Errorf("audit: %d invariant violation(s)", failures)
	}
	return nil
}

// writeAuditJSON writes the per-cluster audit reports to path.
func (o *clusterObserver) writeAuditJSON(path string) error {
	o.mu.Lock()
	type entry struct {
		Cluster string       `json:"cluster"`
		Report  audit.Report `json:"report"`
	}
	out := make([]entry, len(o.auditors))
	for i, a := range o.auditors {
		out[i] = entry{Cluster: o.labels[i], Report: a.Report()}
	}
	o.mu.Unlock()
	return writeJSONFile(path, out)
}

// writeHealthJSON stops every health monitor and writes the final
// per-cluster node scores to path.
func (o *clusterObserver) writeHealthJSON(path string) error {
	o.mu.Lock()
	type entry struct {
		Cluster  string            `json:"cluster"`
		Nodes    []hdfs.NodeHealth `json:"nodes"`
		Degraded []int             `json:"degraded"`
	}
	out := make([]entry, len(o.monitors))
	for i, m := range o.monitors {
		m.Stop()
		e := entry{Cluster: o.monLabels[i], Nodes: m.Report(), Degraded: []int{}}
		for _, n := range m.Degraded() {
			e.Degraded = append(e.Degraded, int(n))
		}
		out[i] = e
	}
	o.mu.Unlock()
	return writeJSONFile(path, out)
}

// writeProgressJSON writes the per-cluster transition progress reports to
// path.
func (o *clusterObserver) writeProgressJSON(path string) error {
	o.mu.Lock()
	type entry struct {
		Cluster string          `json:"cluster"`
		Report  progress.Report `json:"report"`
	}
	out := make([]entry, len(o.trackers))
	for i, p := range o.trackers {
		out[i] = entry{Cluster: o.trkLabels[i], Report: p.Report()}
	}
	o.mu.Unlock()
	return writeJSONFile(path, out)
}

// writeTenantsJSON writes the per-cluster tenant accounting snapshots to
// path.
func (o *clusterObserver) writeTenantsJSON(path string) error {
	o.mu.Lock()
	type entry struct {
		Cluster        string               `json:"cluster"`
		Tenants        []tenant.TenantStats `json:"tenants"`
		CrossRackBytes int64                `json:"cross_rack_bytes"`
		IntraRackBytes int64                `json:"intra_rack_bytes"`
	}
	out := make([]entry, len(o.tables))
	for i, t := range o.tables {
		cross, intra := t.FabricTotals()
		out[i] = entry{
			Cluster: o.tabLabels[i], Tenants: t.Snapshot(),
			CrossRackBytes: cross, IntraRackBytes: intra,
		}
	}
	o.mu.Unlock()
	return writeJSONFile(path, out)
}

// mergedTimeline stops every sampler and merges the per-cluster timelines
// onto the shared run clock.
func (o *clusterObserver) mergedTimeline() fabric.Timeline {
	o.mu.Lock()
	defer o.mu.Unlock()
	var tl fabric.Timeline
	for i, s := range o.samplers {
		s.Stop()
		tl.Merge(s.Timeline(), o.offsets[i])
	}
	return tl
}

// writeJSONFile writes v to path as indented JSON.
func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
