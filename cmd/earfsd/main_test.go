package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ear/internal/events"
	"ear/internal/events/audit"
	"ear/internal/fabric"
	"ear/internal/hdfs"
	"ear/internal/progress"
	"ear/internal/telemetry"
	"ear/internal/telemetry/slo"
	"ear/internal/tenant"
)

// testMux builds an adminMux over a tiny live cluster, returning the mux
// and the cluster for driving traffic.
func testMux(t *testing.T) (*http.ServeMux, *hdfs.Cluster) {
	t.Helper()
	cluster, err := hdfs.NewCluster(hdfs.Config{
		Racks: 3, NodesPerRack: 2, Policy: "ear",
		K: 2, N: 3, C: 1, BlockSizeBytes: 4096,
		BandwidthBytesPerSec: 1 << 30, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })

	reg := telemetry.NewRegistry()
	cluster.SetTelemetry(reg)
	jrn := events.NewJournal(0)
	cluster.SetJournal(jrn)
	aud := audit.New(cluster.Topology(), audit.Config{Replicas: cluster.Config().Replicas, C: 1, CheckCoreRack: true})
	aud.Attach(jrn)
	prog := progress.New(progress.Config{Replicas: cluster.Config().Replicas, Policy: "ear"})
	prog.Attach(jrn)
	sampler := fabric.NewSampler(cluster.Fabric(), 0)
	tracker := slo.NewTracker(reg, 0)
	health := hdfs.NewHealthMonitor(cluster, hdfs.HealthConfig{})

	obs := &observability{
		journal: jrn, auditor: aud, sampler: sampler,
		tracer: telemetry.NewTracer(), slo: tracker, health: health,
		progress: prog, tenants: cluster.Tenants(),
	}
	return adminMux(reg, cluster, obs), cluster
}

func get(t *testing.T, mux *http.ServeMux, path string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, w.Code)
	}
	return w
}

// TestMetricsContentNegotiation checks that /metrics serves JSON by default
// and flips to the Prometheus text exposition via ?format=prom or an
// Accept header preferring text/plain.
func TestMetricsContentNegotiation(t *testing.T) {
	mux, cluster := testMux(t)
	data := make([]byte, cluster.Config().BlockSizeBytes)
	if _, err := cluster.WriteBlock(0, data); err != nil {
		t.Fatal(err)
	}

	w := get(t, mux, "/metrics", nil)
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default /metrics Content-Type = %q, want application/json", ct)
	}
	var snap []telemetry.FamilySnapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("default /metrics is not a JSON snapshot: %v", err)
	}

	for _, req := range []struct {
		path string
		hdr  map[string]string
	}{
		{"/metrics?format=prom", nil},
		{"/metrics", map[string]string{"Accept": "text/plain"}},
	} {
		w := get(t, mux, req.path, req.hdr)
		if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("%v: Content-Type = %q, want text/plain", req, ct)
		}
		body := w.Body.String()
		if !strings.Contains(body, "# TYPE") {
			t.Fatalf("%v: no Prometheus TYPE lines in body:\n%s", req, body)
		}
	}
}

// TestProgressAndTenantsEndpoints drives one write through the cluster and
// checks /progress and /tenants serve coherent JSON plus self-contained
// HTML views.
func TestProgressAndTenantsEndpoints(t *testing.T) {
	mux, cluster := testMux(t)
	ctx := tenant.NewContext(t.Context(), "acme")
	data := make([]byte, cluster.Config().BlockSizeBytes)
	if _, err := cluster.WriteBlockCtx(ctx, 0, data); err != nil {
		t.Fatal(err)
	}

	var prog progress.Report
	if err := json.Unmarshal(get(t, mux, "/progress", nil).Body.Bytes(), &prog); err != nil {
		t.Fatal(err)
	}
	if prog.Events == 0 {
		t.Fatal("/progress folded no events after a write")
	}

	var tens struct {
		Tenants []tenant.TenantStats `json:"tenants"`
	}
	if err := json.Unmarshal(get(t, mux, "/tenants", nil).Body.Bytes(), &tens); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ts := range tens.Tenants {
		if ts.Tenant == "acme" {
			found = true
			for _, op := range ts.Ops {
				if op.Op == "write" && op.Count == 1 {
					goto html
				}
			}
			t.Fatalf("tenant acme has no write charge: %+v", ts.Ops)
		}
	}
	if !found {
		t.Fatalf("tenant acme missing from /tenants: %+v", tens.Tenants)
	}
html:
	for _, path := range []string{"/progress?view=html", "/tenants?view=html"} {
		w := get(t, mux, path, nil)
		body := w.Body.String()
		if !strings.HasPrefix(body, "<!DOCTYPE html>") {
			t.Fatalf("%s: not an HTML document", path)
		}
		if strings.Contains(body, "%!") {
			t.Fatalf("%s: fmt verb escape error in page:\n%s", path, body)
		}
	}
}
