package main

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"

	"ear/internal/events"
	"ear/internal/events/audit"
	"ear/internal/fabric"
	"ear/internal/hdfs"
	"ear/internal/progress"
	"ear/internal/telemetry"
	"ear/internal/telemetry/slo"
	"ear/internal/tenant"
	"ear/internal/topology"
)

// observability bundles the journal-backed instruments the admin endpoint
// serves: the event journal (/events), the invariant auditor (/audit), the
// fabric utilization sampler (/timeline), the request tracer (/trace), the
// SLO tracker (/slo), the node health monitor (/health), the transition
// progress tracker (/progress) and the per-tenant accounting table
// (/tenants).
type observability struct {
	journal  *events.Journal
	auditor  *audit.Auditor
	sampler  *fabric.Sampler
	tracer   *telemetry.Tracer
	slo      *slo.Tracker
	health   *hdfs.HealthMonitor
	progress *progress.Tracker
	tenants  *tenant.Table
}

// handleEvents serves cursor reads over the journal. Query parameters:
// cursor (sequence number to read after, default 0), max (event cap,
// default 1000), and the filters type, subsystem, block, stripe, node and
// trace (hex trace ID, for following one request end to end). The response
// carries the events, the cursor for the next poll, and how many
// matching-eligible events were lost to ring wrap.
func (o *observability) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	cursor, err := parseUint(q.Get("cursor"), 0)
	if err != nil {
		http.Error(w, "bad cursor: "+err.Error(), http.StatusBadRequest)
		return
	}
	max, err := parseUint(q.Get("max"), 1000)
	if err != nil {
		http.Error(w, "bad max: "+err.Error(), http.StatusBadRequest)
		return
	}
	f := events.Filter{
		Type:      events.Type(q.Get("type")),
		Subsystem: q.Get("subsystem"),
	}
	if v := q.Get("block"); v != "" {
		id, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			http.Error(w, "bad block: "+err.Error(), http.StatusBadRequest)
			return
		}
		b := topology.BlockID(id)
		f.Block = &b
	}
	if v := q.Get("stripe"); v != "" {
		id, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			http.Error(w, "bad stripe: "+err.Error(), http.StatusBadRequest)
			return
		}
		s := topology.StripeID(id)
		f.Stripe = &s
	}
	if v := q.Get("node"); v != "" {
		id, err := strconv.Atoi(v)
		if err != nil {
			http.Error(w, "bad node: "+err.Error(), http.StatusBadRequest)
			return
		}
		n := topology.NodeID(id)
		f.Node = &n
	}
	if v := q.Get("trace"); v != "" {
		id, err := strconv.ParseUint(v, 16, 64)
		if err != nil {
			http.Error(w, "bad trace (want hex): "+err.Error(), http.StatusBadRequest)
			return
		}
		f.Trace = id
	}
	evs, next, dropped := o.journal.Since(cursor, int(max), f)
	writeJSON(w, map[string]any{
		"events":  evs,
		"next":    next,
		"dropped": dropped,
	})
}

// handleAudit serves the auditor's invariant report.
func (o *observability) handleAudit(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, o.auditor.Report())
}

// handleTimeline serves the fabric utilization timeline: JSON by default, a
// self-contained HTML view with ?view=html.
func (o *observability) handleTimeline(w http.ResponseWriter, r *http.Request) {
	tl := o.sampler.Timeline()
	if r.URL.Query().Get("view") == "html" {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := writeTimelineHTML(w, tl); err != nil {
			slog.Warn("timeline html write failed", "err", err)
		}
		return
	}
	writeJSON(w, tl)
}

// handleTrace exports the request tracer's span buffer in Chrome trace
// format (load in chrome://tracing or Perfetto). ?reset=1 drains the buffer
// after export so long-running daemons can be sampled in windows.
func (o *observability) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := o.tracer.WriteChromeTrace(w); err != nil {
		slog.Warn("trace write failed", "err", err)
		return
	}
	if r.URL.Query().Get("reset") == "1" {
		o.tracer.Reset()
	}
}

// handleSLO serves the SLO tracker's report: per-objective windowed
// quantile estimates, burn rates and remaining error budget. JSON by
// default, a self-contained HTML view with ?view=html.
func (o *observability) handleSLO(w http.ResponseWriter, r *http.Request) {
	rep := o.slo.Report()
	if r.URL.Query().Get("view") == "html" {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := writeBlobHTML(w, sloPage, rep); err != nil {
			slog.Warn("slo html write failed", "err", err)
		}
		return
	}
	writeJSON(w, rep)
}

// handleHealth serves the node health monitor's per-node scores plus the
// set of currently degraded nodes. JSON by default, a self-contained HTML
// view with ?view=html.
func (o *observability) handleHealth(w http.ResponseWriter, r *http.Request) {
	rep := map[string]any{
		"nodes":    o.health.Report(),
		"degraded": o.health.Degraded(),
	}
	if r.URL.Query().Get("view") == "html" {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := writeBlobHTML(w, healthPage, rep); err != nil {
			slog.Warn("health html write failed", "err", err)
		}
		return
	}
	writeJSON(w, rep)
}

// handleProgress serves the transition progress tracker's report: encode
// backlog, throughput-windowed ETA, the progress curve and the
// durability-exposure windows. JSON by default, a self-contained HTML view
// with ?view=html.
func (o *observability) handleProgress(w http.ResponseWriter, r *http.Request) {
	rep := o.progress.Report()
	if r.URL.Query().Get("view") == "html" {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := writeBlobHTML(w, progressPage, rep); err != nil {
			slog.Warn("progress html write failed", "err", err)
		}
		return
	}
	writeJSON(w, rep)
}

// handleTenants serves the per-tenant resource accounting table: per-op
// counts, bytes and rolling rates plus cross-/intra-rack fabric splits.
// JSON by default, a self-contained HTML view with ?view=html.
func (o *observability) handleTenants(w http.ResponseWriter, r *http.Request) {
	cross, intra := o.tenants.FabricTotals()
	rep := map[string]any{
		"tenants":          o.tenants.Snapshot(),
		"cross_rack_bytes": cross,
		"intra_rack_bytes": intra,
	}
	if r.URL.Query().Get("view") == "html" {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := writeBlobHTML(w, tenantsPage, rep); err != nil {
			slog.Warn("tenants html write failed", "err", err)
		}
		return
	}
	writeJSON(w, rep)
}

// parseUint parses a uint64 query value, empty meaning def.
func parseUint(s string, def uint64) (uint64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseUint(s, 10, 64)
}

// writeJSON renders v as the response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		slog.Warn("json write failed", "err", err)
	}
}

// timelinePage is the self-contained /timeline?view=html document: the
// timeline JSON is embedded and rendered client-side onto one canvas strip
// per link, cross-rack vs intra-rack payload first — no external assets, so
// the page works from a file:// save or an air-gapped lab box.
const timelinePage = `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>ear fabric timeline</title>
<style>
body { font: 13px/1.4 system-ui, sans-serif; margin: 1.5em; background: #fafafa; color: #222; }
h1 { font-size: 1.2em; } h2 { font-size: 1em; margin: 1.2em 0 .3em; }
.strip { margin-bottom: 2px; display: flex; align-items: center; }
.strip .name { width: 14em; text-align: right; padding-right: .8em; color: #555;
  white-space: nowrap; overflow: hidden; text-overflow: ellipsis; }
canvas { background: #fff; border: 1px solid #ddd; }
.legend { color: #777; margin: .5em 0 1em; }
</style></head><body>
<h1>Fabric utilization timeline</h1>
<div class="legend" id="meta"></div>
<div id="payload"></div>
<div id="links"></div>
<script>
const TL = %s;
const W = 720, H = 28;
function strip(parent, name, pts, maxV, color) {
  const row = document.createElement('div'); row.className = 'strip';
  const label = document.createElement('span'); label.className = 'name'; label.textContent = name;
  const cv = document.createElement('canvas'); cv.width = W; cv.height = H;
  row.appendChild(label); row.appendChild(cv); parent.appendChild(row);
  const g = cv.getContext('2d');
  if (!pts || !pts.length || !(TL.duration_seconds > 0)) return;
  g.fillStyle = color; g.strokeStyle = color;
  g.beginPath(); g.moveTo(0, H);
  for (const p of pts) {
    const x = p.t / TL.duration_seconds * W;
    const v = maxV > 0 ? Math.min(p.mbps / maxV, 1) : 0;
    g.lineTo(x, H - v * (H - 2));
  }
  g.lineTo(W, H); g.closePath(); g.globalAlpha = 0.35; g.fill();
  g.globalAlpha = 1; g.stroke();
}
function maxMBps(series) {
  let m = 0;
  for (const pts of series) for (const p of (pts || [])) m = Math.max(m, p.mbps);
  return m;
}
const meta = document.getElementById('meta');
meta.textContent = 'duration ' + (TL.duration_seconds || 0).toFixed(2) + ' s, sample interval ' +
  (TL.interval_seconds || 0).toFixed(3) + ' s, ' + ((TL.links || []).length) + ' links';
const payload = document.getElementById('payload');
const h2p = document.createElement('h2'); h2p.textContent = 'Payload throughput (MB/s)';
payload.appendChild(h2p);
const pMax = maxMBps([TL.cross_rack, TL.intra_rack]);
strip(payload, 'cross-rack (' + pMax.toFixed(1) + ' MB/s max)', TL.cross_rack, pMax, '#c0392b');
strip(payload, 'intra-rack', TL.intra_rack, pMax, '#2980b9');
const links = document.getElementById('links');
const h2l = document.createElement('h2'); h2l.textContent = 'Per-link throughput (MB/s, shared scale)';
links.appendChild(h2l);
const lMax = maxMBps((TL.links || []).map(l => l.points));
const colors = { 'node-up': '#27ae60', 'node-down': '#16a085', 'rack-up': '#8e44ad',
  'rack-down': '#9b59b6', 'disk': '#7f8c8d' };
for (const l of (TL.links || [])) {
  strip(links, l.name + ' [' + l.class + ']', l.points, lMax, colors[l.class] || '#34495e');
}
</script></body></html>
`

// writeTimelineHTML renders the self-contained timeline page.
func writeTimelineHTML(w http.ResponseWriter, tl fabric.Timeline) error {
	blob, err := json.Marshal(tl)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, timelinePage, blob)
	return err
}

// writeBlobHTML renders a self-contained page whose single %s verb takes
// the JSON-encoded data (same pattern as the timeline page).
func writeBlobHTML(w http.ResponseWriter, page string, v any) error {
	blob, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, page, blob)
	return err
}

// sloPage is the self-contained /slo?view=html document: one row per
// objective with its windowed quantile estimate, burn rate and an error
// budget bar. No external assets.
const sloPage = `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>ear SLOs</title>
<style>
body { font: 13px/1.4 system-ui, sans-serif; margin: 1.5em; background: #fafafa; color: #222; }
h1 { font-size: 1.2em; }
table { border-collapse: collapse; }
th, td { padding: .35em .8em; border-bottom: 1px solid #ddd; text-align: right; }
th { color: #555; } td.name { text-align: left; font-weight: 600; }
.bar { width: 10em; height: 10px; background: #eee; border-radius: 5px; overflow: hidden; }
.bar div { height: 100%%; }
.ok { color: #27ae60; } .bad { color: #c0392b; } .warm { color: #999; }
</style></head><body>
<h1>Service level objectives</h1>
<table><thead><tr>
<th style="text-align:left">objective</th><th>target</th><th>ops</th><th>slow</th>
<th>q estimate</th><th>burn rate</th><th>budget</th><th></th><th>status</th>
</tr></thead><tbody id="rows"></tbody></table>
<script>
const REP = %s;
const rows = document.getElementById('rows');
for (const s of (REP || [])) {
  const tr = document.createElement('tr');
  const budget = Math.max(0, Math.min(1, s.budget_remaining));
  const color = s.met ? '#27ae60' : '#c0392b';
  const status = !s.filled ? '<span class="warm">warming up</span>'
    : (s.met ? '<span class="ok">met</span>' : '<span class="bad">burning</span>');
  tr.innerHTML = '<td class="name">' + s.name + '</td>' +
    '<td>p' + (s.quantile * 100).toFixed(0) + ' &le; ' + s.threshold + 's</td>' +
    '<td>' + s.ops + '</td>' +
    '<td>' + s.slow + ' (' + (100 * s.slow_ratio).toFixed(2) + '%%)</td>' +
    '<td>' + s.quantile_estimate.toFixed(4) + 's</td>' +
    '<td>' + s.burn_rate.toFixed(2) + 'x</td>' +
    '<td>' + (100 * budget).toFixed(1) + '%%</td>' +
    '<td><div class="bar"><div style="width:' + (100 * budget) + '%%;background:' + color + '"></div></div></td>' +
    '<td>' + status + '</td>';
  rows.appendChild(tr);
}
</script></body></html>
`

// healthPage is the self-contained /health?view=html document: one row per
// node with its score bar and per-signal breakdown. No external assets.
const healthPage = `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>ear cluster health</title>
<style>
body { font: 13px/1.4 system-ui, sans-serif; margin: 1.5em; background: #fafafa; color: #222; }
h1 { font-size: 1.2em; }
table { border-collapse: collapse; }
th, td { padding: .3em .8em; border-bottom: 1px solid #ddd; text-align: right; }
th { color: #555; } td.name { text-align: left; }
.bar { width: 10em; height: 10px; background: #eee; border-radius: 5px; overflow: hidden; }
.bar div { height: 100%%; }
.degraded { color: #c0392b; font-weight: 600; } .dead { color: #999; } .ok { color: #27ae60; }
</style></head><body>
<h1>Cluster health</h1>
<p id="summary"></p>
<table><thead><tr>
<th style="text-align:left">node</th><th>rack</th><th>score</th><th></th>
<th>heartbeat</th><th>hb ratio</th><th>op s/MB</th><th>op ratio</th>
<th>samples</th><th>failures</th><th>state</th>
</tr></thead><tbody id="rows"></tbody></table>
<script>
const REP = %s;
const nodes = REP.nodes || [];
const degraded = REP.degraded || [];
document.getElementById('summary').textContent =
  nodes.length + ' nodes, ' + degraded.length + ' degraded' +
  (degraded.length ? ' (' + degraded.join(', ') + ')' : '');
const rows = document.getElementById('rows');
for (const n of nodes) {
  const tr = document.createElement('tr');
  const score = Math.max(0, Math.min(100, n.score));
  const color = n.dead ? '#999' : (n.degraded ? '#c0392b' : (score < 75 ? '#f39c12' : '#27ae60'));
  const state = n.dead ? '<span class="dead">dead</span>'
    : (n.degraded ? '<span class="degraded">degraded</span>' : '<span class="ok">healthy</span>');
  tr.innerHTML = '<td class="name">node ' + n.node + '</td>' +
    '<td>' + n.rack + '</td>' +
    '<td>' + score.toFixed(1) + '</td>' +
    '<td><div class="bar"><div style="width:' + score + '%%;background:' + color + '"></div></div></td>' +
    '<td>' + (n.heartbeat / 1e6).toFixed(1) + 'ms</td>' +
    '<td>' + n.heartbeat_ratio.toFixed(2) + '</td>' +
    '<td>' + n.op_sec_per_mb.toFixed(3) + '</td>' +
    '<td>' + n.op_ratio.toFixed(2) + '</td>' +
    '<td>' + n.op_samples + '</td>' +
    '<td>' + n.failures.toFixed(2) + '</td>' +
    '<td>' + state + '</td>';
  rows.appendChild(tr);
}
</script></body></html>
`

// progressPage is the self-contained /progress?view=html document: the
// encode-backlog summary, a canvas progress curve and the durability
// exposure windows. No external assets.
const progressPage = `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>ear transition progress</title>
<style>
body { font: 13px/1.4 system-ui, sans-serif; margin: 1.5em; background: #fafafa; color: #222; }
h1 { font-size: 1.2em; } h2 { font-size: 1em; margin: 1.2em 0 .3em; }
table { border-collapse: collapse; }
th, td { padding: .3em .8em; border-bottom: 1px solid #ddd; text-align: right; }
th { color: #555; } td.name { text-align: left; }
.bar { width: 24em; height: 14px; background: #eee; border-radius: 7px; overflow: hidden; }
.bar div { height: 100%%; background: #27ae60; }
canvas { background: #fff; border: 1px solid #ddd; }
.legend { color: #777; margin: .5em 0 1em; }
.risk { color: #c0392b; font-weight: 600; } .clear { color: #27ae60; }
</style></head><body>
<h1>Replication &rarr; erasure-coding transition</h1>
<div class="legend" id="meta"></div>
<div class="bar"><div id="fill"></div></div>
<p id="stats"></p>
<h2>Progress curve</h2>
<canvas id="curve" width="720" height="160"></canvas>
<h2 id="risktitle">Durability exposure</h2>
<table><thead><tr>
<th style="text-align:left">invariant</th><th>stripe</th><th>block</th>
<th>opened seq</th><th>resolved seq</th><th>exposed</th>
</tr></thead><tbody id="rows"></tbody></table>
<script>
const REP = %s;
const frac = REP.fraction_encoded || 0;
document.getElementById('fill').style.width = (100 * frac) + '%%';
document.getElementById('meta').textContent = 'policy ' + REP.policy +
  ', ' + REP.encoded_stripes + '/' + REP.total_stripes + ' stripes encoded (' +
  (100 * frac).toFixed(1) + '%%), ' + REP.events + ' events folded' +
  (REP.recovering ? ' — rebuilding from recovered state' : '');
const eta = REP.eta_seconds;
document.getElementById('stats').textContent =
  'backlog ' + REP.backlog_stripes + ' stripes / ' + REP.backlog_bytes + ' bytes, rate ' +
  (REP.rate_bytes_per_sec || 0).toFixed(0) + ' B/s, ETA ' +
  (eta < 0 ? 'unknown' : eta.toFixed(1) + 's') + ', at risk now: ' + REP.blocks_at_risk;
const cv = document.getElementById('curve'), g = cv.getContext('2d');
const pts = REP.curve || [];
if (pts.length) {
  const tMax = Math.max(pts[pts.length - 1].t, 1e-9);
  g.strokeStyle = '#2980b9'; g.fillStyle = '#2980b9';
  g.beginPath(); g.moveTo(0, cv.height);
  for (const p of pts) {
    g.lineTo(p.t / tMax * cv.width, cv.height - p.fraction * (cv.height - 4));
  }
  g.globalAlpha = 0.25; g.lineTo(pts[pts.length - 1].t / tMax * cv.width, cv.height);
  g.closePath(); g.fill(); g.globalAlpha = 1; g.stroke();
}
const wins = REP.exposure_windows || [];
document.getElementById('risktitle').textContent = 'Durability exposure (' + wins.length +
  ' windows, ' + (REP.total_exposure_seconds || 0).toFixed(3) + 's total)';
const rows = document.getElementById('rows');
for (const v of wins) {
  const tr = document.createElement('tr');
  const open = !v.resolved_seq;
  tr.innerHTML = '<td class="name">' + v.invariant + '</td>' +
    '<td>' + v.stripe + '</td><td>' + v.block + '</td>' +
    '<td>' + v.opened_seq + '</td>' +
    '<td>' + (open ? '<span class="risk">open</span>' : v.resolved_seq) + '</td>' +
    '<td>' + v.seconds.toFixed(4) + 's</td>';
  rows.appendChild(tr);
}
if (!wins.length) {
  const tr = document.createElement('tr');
  tr.innerHTML = '<td class="name clear" colspan="6">no exposure windows</td>';
  rows.appendChild(tr);
}
</script></body></html>
`

// tenantsPage is the self-contained /tenants?view=html document: one block
// per tenant with its per-op table and fabric byte split. No external
// assets.
const tenantsPage = `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>ear tenants</title>
<style>
body { font: 13px/1.4 system-ui, sans-serif; margin: 1.5em; background: #fafafa; color: #222; }
h1 { font-size: 1.2em; } h2 { font-size: 1em; margin: 1.2em 0 .3em; }
table { border-collapse: collapse; margin-bottom: 1em; }
th, td { padding: .3em .8em; border-bottom: 1px solid #ddd; text-align: right; }
th { color: #555; } td.name { text-align: left; font-weight: 600; }
.legend { color: #777; margin: .5em 0 1em; }
</style></head><body>
<h1>Per-tenant resource accounting</h1>
<div class="legend" id="meta"></div>
<div id="tenants"></div>
<script>
const REP = %s;
document.getElementById('meta').textContent = 'fabric totals: ' +
  REP.cross_rack_bytes + ' B cross-rack, ' + REP.intra_rack_bytes + ' B intra-rack';
const root = document.getElementById('tenants');
for (const t of (REP.tenants || [])) {
  const h2 = document.createElement('h2');
  h2.textContent = t.tenant + ' — ' + t.cross_rack_bytes + ' B cross-rack, ' +
    t.intra_rack_bytes + ' B intra-rack';
  root.appendChild(h2);
  const tbl = document.createElement('table');
  tbl.innerHTML = '<thead><tr><th style="text-align:left">op</th><th>count</th>' +
    '<th>bytes</th><th>count/s</th><th>bytes/s</th></tr></thead>';
  const body = document.createElement('tbody');
  for (const op of (t.ops || [])) {
    const tr = document.createElement('tr');
    tr.innerHTML = '<td class="name">' + op.op + '</td>' +
      '<td>' + op.count + '</td><td>' + op.bytes + '</td>' +
      '<td>' + op.count_per_sec.toFixed(2) + '</td>' +
      '<td>' + op.bytes_per_sec.toFixed(0) + '</td>';
    body.appendChild(tr);
  }
  tbl.appendChild(body);
  root.appendChild(tbl);
}
</script></body></html>
`
