package main

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"

	"ear/internal/events"
	"ear/internal/events/audit"
	"ear/internal/fabric"
	"ear/internal/topology"
)

// observability bundles the journal-backed instruments the admin endpoint
// serves: the event journal (/events), the invariant auditor (/audit), and
// the fabric utilization sampler (/timeline).
type observability struct {
	journal *events.Journal
	auditor *audit.Auditor
	sampler *fabric.Sampler
}

// handleEvents serves cursor reads over the journal. Query parameters:
// cursor (sequence number to read after, default 0), max (event cap,
// default 1000), and the filters type, subsystem, block, stripe, node. The
// response carries the events, the cursor for the next poll, and how many
// matching-eligible events were lost to ring wrap.
func (o *observability) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	cursor, err := parseUint(q.Get("cursor"), 0)
	if err != nil {
		http.Error(w, "bad cursor: "+err.Error(), http.StatusBadRequest)
		return
	}
	max, err := parseUint(q.Get("max"), 1000)
	if err != nil {
		http.Error(w, "bad max: "+err.Error(), http.StatusBadRequest)
		return
	}
	f := events.Filter{
		Type:      events.Type(q.Get("type")),
		Subsystem: q.Get("subsystem"),
	}
	if v := q.Get("block"); v != "" {
		id, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			http.Error(w, "bad block: "+err.Error(), http.StatusBadRequest)
			return
		}
		b := topology.BlockID(id)
		f.Block = &b
	}
	if v := q.Get("stripe"); v != "" {
		id, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			http.Error(w, "bad stripe: "+err.Error(), http.StatusBadRequest)
			return
		}
		s := topology.StripeID(id)
		f.Stripe = &s
	}
	if v := q.Get("node"); v != "" {
		id, err := strconv.Atoi(v)
		if err != nil {
			http.Error(w, "bad node: "+err.Error(), http.StatusBadRequest)
			return
		}
		n := topology.NodeID(id)
		f.Node = &n
	}
	evs, next, dropped := o.journal.Since(cursor, int(max), f)
	writeJSON(w, map[string]any{
		"events":  evs,
		"next":    next,
		"dropped": dropped,
	})
}

// handleAudit serves the auditor's invariant report.
func (o *observability) handleAudit(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, o.auditor.Report())
}

// handleTimeline serves the fabric utilization timeline: JSON by default, a
// self-contained HTML view with ?view=html.
func (o *observability) handleTimeline(w http.ResponseWriter, r *http.Request) {
	tl := o.sampler.Timeline()
	if r.URL.Query().Get("view") == "html" {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := writeTimelineHTML(w, tl); err != nil {
			slog.Warn("timeline html write failed", "err", err)
		}
		return
	}
	writeJSON(w, tl)
}

// parseUint parses a uint64 query value, empty meaning def.
func parseUint(s string, def uint64) (uint64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseUint(s, 10, 64)
}

// writeJSON renders v as the response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		slog.Warn("json write failed", "err", err)
	}
}

// timelinePage is the self-contained /timeline?view=html document: the
// timeline JSON is embedded and rendered client-side onto one canvas strip
// per link, cross-rack vs intra-rack payload first — no external assets, so
// the page works from a file:// save or an air-gapped lab box.
const timelinePage = `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>ear fabric timeline</title>
<style>
body { font: 13px/1.4 system-ui, sans-serif; margin: 1.5em; background: #fafafa; color: #222; }
h1 { font-size: 1.2em; } h2 { font-size: 1em; margin: 1.2em 0 .3em; }
.strip { margin-bottom: 2px; display: flex; align-items: center; }
.strip .name { width: 14em; text-align: right; padding-right: .8em; color: #555;
  white-space: nowrap; overflow: hidden; text-overflow: ellipsis; }
canvas { background: #fff; border: 1px solid #ddd; }
.legend { color: #777; margin: .5em 0 1em; }
</style></head><body>
<h1>Fabric utilization timeline</h1>
<div class="legend" id="meta"></div>
<div id="payload"></div>
<div id="links"></div>
<script>
const TL = %s;
const W = 720, H = 28;
function strip(parent, name, pts, maxV, color) {
  const row = document.createElement('div'); row.className = 'strip';
  const label = document.createElement('span'); label.className = 'name'; label.textContent = name;
  const cv = document.createElement('canvas'); cv.width = W; cv.height = H;
  row.appendChild(label); row.appendChild(cv); parent.appendChild(row);
  const g = cv.getContext('2d');
  if (!pts || !pts.length || !(TL.duration_seconds > 0)) return;
  g.fillStyle = color; g.strokeStyle = color;
  g.beginPath(); g.moveTo(0, H);
  for (const p of pts) {
    const x = p.t / TL.duration_seconds * W;
    const v = maxV > 0 ? Math.min(p.mbps / maxV, 1) : 0;
    g.lineTo(x, H - v * (H - 2));
  }
  g.lineTo(W, H); g.closePath(); g.globalAlpha = 0.35; g.fill();
  g.globalAlpha = 1; g.stroke();
}
function maxMBps(series) {
  let m = 0;
  for (const pts of series) for (const p of (pts || [])) m = Math.max(m, p.mbps);
  return m;
}
const meta = document.getElementById('meta');
meta.textContent = 'duration ' + (TL.duration_seconds || 0).toFixed(2) + ' s, sample interval ' +
  (TL.interval_seconds || 0).toFixed(3) + ' s, ' + ((TL.links || []).length) + ' links';
const payload = document.getElementById('payload');
const h2p = document.createElement('h2'); h2p.textContent = 'Payload throughput (MB/s)';
payload.appendChild(h2p);
const pMax = maxMBps([TL.cross_rack, TL.intra_rack]);
strip(payload, 'cross-rack (' + pMax.toFixed(1) + ' MB/s max)', TL.cross_rack, pMax, '#c0392b');
strip(payload, 'intra-rack', TL.intra_rack, pMax, '#2980b9');
const links = document.getElementById('links');
const h2l = document.createElement('h2'); h2l.textContent = 'Per-link throughput (MB/s, shared scale)';
links.appendChild(h2l);
const lMax = maxMBps((TL.links || []).map(l => l.points));
const colors = { 'node-up': '#27ae60', 'node-down': '#16a085', 'rack-up': '#8e44ad',
  'rack-down': '#9b59b6', 'disk': '#7f8c8d' };
for (const l of (TL.links || [])) {
  strip(links, l.name + ' [' + l.class + ']', l.points, lMax, colors[l.class] || '#34495e');
}
</script></body></html>
`

// writeTimelineHTML renders the self-contained timeline page.
func writeTimelineHTML(w http.ResponseWriter, tl fabric.Timeline) error {
	blob, err := json.Marshal(tl)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, timelinePage, blob)
	return err
}
