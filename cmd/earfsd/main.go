// Command earfsd serves a mini-HDFS cluster over TCP: an in-process set of
// racks, DataNodes, a NameNode with the chosen placement policy (RR or
// EAR), a bandwidth-shaped network, and a RaidNode for background encoding.
// Drive it with the earfs client.
//
// Usage:
//
//	earfsd -listen :7070 -policy ear -racks 8 -nodes 4 -k 6 -n 9
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"ear/internal/hdfs"
	"ear/internal/netcfs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "earfsd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen  = flag.String("listen", "127.0.0.1:7070", "address to listen on")
		policy  = flag.String("policy", "ear", `placement policy: "rr" or "ear"`)
		racks   = flag.Int("racks", 12, "racks")
		nodes   = flag.Int("nodes", 4, "nodes per rack")
		k       = flag.Int("k", 6, "data blocks per stripe")
		n       = flag.Int("n", 9, "stripe width (data + parity)")
		c       = flag.Int("c", 1, "max blocks of a stripe per rack after encoding")
		block   = flag.Int("block", 1<<20, "block size in bytes")
		bwMBps  = flag.Float64("bw", 64, "link bandwidth in MB/s")
		seed    = flag.Int64("seed", 1, "random seed")
		verbose = flag.Bool("v", true, "log startup info")
	)
	flag.Parse()

	cluster, err := hdfs.NewCluster(hdfs.Config{
		Racks:                *racks,
		NodesPerRack:         *nodes,
		Policy:               *policy,
		K:                    *k,
		N:                    *n,
		C:                    *c,
		BlockSizeBytes:       *block,
		BandwidthBytesPerSec: *bwMBps * (1 << 20),
		Seed:                 *seed,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	srv, err := netcfs.Serve(cluster, *listen)
	if err != nil {
		return err
	}
	defer srv.Close()
	if *verbose {
		fmt.Printf("earfsd: serving %d racks x %d nodes, policy=%s, (n,k)=(%d,%d), c=%d on %s\n",
			*racks, *nodes, *policy, *n, *k, *c, srv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("earfsd: shutting down")
	return nil
}
