// Command earfsd serves a mini-HDFS cluster over TCP: an in-process set of
// racks, DataNodes, a NameNode with the chosen placement policy (RR or
// EAR), a bandwidth-shaped network, and a RaidNode for background encoding.
// Drive it with the earfs client.
//
// Usage:
//
//	earfsd -listen :7070 -policy ear -racks 8 -nodes 4 -k 6 -n 9
//
// With -admin, earfsd also serves an HTTP observability endpoint:
// /metrics (JSON by default, Prometheus text exposition via ?format=prom
// or an Accept header preferring text/plain), /debug/vars (expvar,
// including the RaidNode's cumulative encoding statistics),
// /debug/pprof/*, /events (the structured event journal, cursor + filter,
// including ?trace= to follow one request), /audit (the invariant
// auditor's report), /timeline (per-link fabric utilization), /trace
// (Chrome-trace export of every request span; ?reset=1 drains the
// buffer), /slo (per-operation error budgets and burn rates), /health
// (per-node health scores from the slow-node detector), /progress (the
// replication-to-EC transition tracker: encode backlog, ETA and
// durability-exposure windows) and /tenants (per-tenant resource
// accounting). /timeline, /slo, /health, /progress and /tenants accept
// ?view=html for a self-contained chart:
//
//	earfsd -admin 127.0.0.1:7071
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"ear/internal/events"
	"ear/internal/events/audit"
	"ear/internal/fabric"
	"ear/internal/hdfs"
	"ear/internal/netcfs"
	"ear/internal/progress"
	"ear/internal/telemetry"
	"ear/internal/telemetry/slo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "earfsd:", err)
		os.Exit(1)
	}
}

// parseLevel maps a -log-level value to a slog level.
func parseLevel(s string) (slog.Level, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(s)); err != nil {
		return 0, fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", s)
	}
	return lvl, nil
}

// adminMux builds the admin endpoint: metrics (Prometheus or JSON by
// content negotiation), expvar, pprof, and the journal-backed views
// (/events, /audit, /timeline, /trace, /slo, /health).
func adminMux(reg *telemetry.Registry, cluster *hdfs.Cluster, obs *observability) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		// Content negotiation: JSON is the default; Prometheus 0.0.4 text
		// exposition when the client asks via ?format=prom or an Accept
		// header that prefers text/plain (what a Prometheus scraper sends).
		if r.URL.Query().Get("format") == "prom" ||
			strings.Contains(r.Header.Get("Accept"), "text/plain") {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			if err := reg.WritePrometheus(w); err != nil {
				slog.Warn("metrics write failed", "err", err)
			}
			return
		}
		writeJSON(w, reg.Snapshot())
	})

	// Publish the RaidNode's cumulative encoding statistics as one expvar
	// map, folded incrementally so each poll is O(new work) (StatsSince).
	var mu sync.Mutex
	var cursor hdfs.StatsCursor
	totals := map[string]any{}
	encodeVar := expvar.Func(func() any {
		mu.Lock()
		defer mu.Unlock()
		d, next := cluster.RaidNode().StatsSince(cursor)
		cursor = next
		add := func(k string, v float64) {
			prev, _ := totals[k].(float64)
			totals[k] = prev + v
		}
		add("stripes", float64(d.Stripes))
		add("encoded_bytes", float64(d.EncodedBytes))
		add("duration_seconds", d.Duration.Seconds())
		add("cross_rack_downloads", float64(d.CrossRackDownloads))
		add("violations", float64(d.Violations))
		out := make(map[string]any, len(totals))
		for k, v := range totals {
			out[k] = v
		}
		return out
	})
	// expvar registration is global and panics on duplicates; reuse the map
	// when adminMux is built more than once in a process (tests).
	vars, ok := expvar.Get("earfsd").(*expvar.Map)
	if vars == nil || !ok {
		vars = expvar.NewMap("earfsd")
	}
	vars.Set("encode", encodeVar)
	mux.Handle("/debug/vars", expvar.Handler())

	mux.HandleFunc("/events", obs.handleEvents)
	mux.HandleFunc("/audit", obs.handleAudit)
	mux.HandleFunc("/timeline", obs.handleTimeline)
	mux.HandleFunc("/trace", obs.handleTrace)
	mux.HandleFunc("/slo", obs.handleSLO)
	mux.HandleFunc("/health", obs.handleHealth)
	mux.HandleFunc("/progress", obs.handleProgress)
	mux.HandleFunc("/tenants", obs.handleTenants)

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func run() error {
	var (
		listen   = flag.String("listen", "127.0.0.1:7070", "address to listen on")
		admin    = flag.String("admin", "", "admin HTTP address for /metrics, /debug/vars and /debug/pprof (empty = disabled)")
		policy   = flag.String("policy", "ear", `placement policy: "rr" or "ear"`)
		racks    = flag.Int("racks", 12, "racks")
		nodes    = flag.Int("nodes", 4, "nodes per rack")
		k        = flag.Int("k", 6, "data blocks per stripe")
		n        = flag.Int("n", 9, "stripe width (data + parity)")
		c        = flag.Int("c", 1, "max blocks of a stripe per rack after encoding")
		block    = flag.Int("block", 1<<20, "block size in bytes")
		bwMBps   = flag.Float64("bw", 64, "link bandwidth in MB/s")
		seed     = flag.Int64("seed", 1, "random seed")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn or error")
		spanCap  = flag.Int("span-limit", 200000, "max retained trace spans (0 = unlimited)")
		sloWin   = flag.Duration("slo-window", time.Minute, "rolling window for SLO error budgets")
		metaDir  = flag.String("meta-dir", "", "durable metadata-plane directory: every NameNode mutation is write-ahead logged there and recovered on restart (empty = in-memory metadata)")
		metaSync = flag.String("meta-sync", "interval", `metadata log fsync policy: "interval", "always" or "none"`)
		metaSnap = flag.Int64("meta-snapshot-every", 100000, "checkpoint the metadata plane every N log appends, truncating the covered log (0 = never)")
		pipeEnc  = flag.Bool("pipelined-encode", false, "encode stripes through the RapidRAID-style distributed pipeline across replica holders instead of gathering blocks at one encoder")
	)
	flag.Parse()

	lvl, err := parseLevel(*logLevel)
	if err != nil {
		return err
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})))

	cluster, err := hdfs.NewCluster(hdfs.Config{
		Racks:                *racks,
		NodesPerRack:         *nodes,
		Policy:               *policy,
		K:                    *k,
		N:                    *n,
		C:                    *c,
		BlockSizeBytes:       *block,
		BandwidthBytesPerSec: *bwMBps * (1 << 20),
		Seed:                 *seed,
		MetaDir:              *metaDir,
		MetaSync:             *metaSync,
		MetaSnapshotEvery:    *metaSnap,
		PipelinedEncode:      *pipeEnc,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()
	if *metaDir != "" {
		nn := cluster.NameNode()
		slog.Info("metadata plane recovered", "dir", *metaDir, "replayed_ops", nn.RecoveredOps(), "blocks", nn.BlockCount())
	}

	// One registry backs everything: cluster internals (client latency,
	// RaidNode counters, fabric bytes, MapReduce gauges) plus the RPC
	// server's per-op series, all visible on /metrics.
	reg := telemetry.NewRegistry()
	cluster.SetTelemetry(reg)

	// One tracer spans the whole request path: the RPC server adopts the
	// client's trace ID from the wire, the cluster's operation spans join
	// it, and the journal events below are stamped with it. The span buffer
	// is bounded; /trace?reset=1 drains it between sampling windows.
	tracer := telemetry.NewTracer()
	tracer.SetLimit(*spanCap)
	cluster.SetTracer(tracer)

	// The event journal records the structured history of every subsystem
	// (allocations, commits, encodes, deletes, transfers...); the auditor
	// folds it into a live layout model and checks the placement invariants
	// continuously. Both run whether or not -admin is set — the journal is a
	// fixed-size ring and the auditor is O(stripe) per event — so a late
	// operator can still read the recent history.
	jrn := events.NewJournal(0)
	cluster.SetJournal(jrn)
	aud := audit.New(cluster.Topology(), audit.Config{
		Replicas:      cluster.Config().Replicas,
		C:             *c,
		CheckCoreRack: *policy == "ear",
	})
	aud.Attach(jrn)

	// The transition progress tracker folds the same journal into the
	// per-stripe lifecycle state machine behind /progress: encode backlog,
	// ETA and the durability-exposure windows. Always on, like the auditor;
	// after a durable-metadata restart it rebuilds from the recovered-state
	// backfill the NameNode publishes.
	prog := progress.New(progress.Config{
		Replicas: cluster.Config().Replicas,
		Policy:   *policy,
	})
	prog.SetTelemetry(reg)
	prog.Attach(jrn)

	// After a durable-metadata restart the journal ring starts empty:
	// replay the canonical event stream implied by the recovered layout so
	// the auditor and progress tracker resume from the pre-crash state
	// instead of an empty model.
	if *metaDir != "" && cluster.NameNode().RecoveredOps() > 0 {
		cluster.NameNode().PublishRecoveredState(jrn)
	}

	srv, err := netcfs.Serve(cluster, *listen)
	if err != nil {
		return err
	}
	defer srv.Close()
	srv.SetTelemetry(reg)
	srv.SetTracer(tracer)

	if *admin != "" {
		ln, err := net.Listen("tcp", *admin)
		if err != nil {
			return fmt.Errorf("admin listen: %w", err)
		}
		defer ln.Close()
		sampler := fabric.NewSampler(cluster.Fabric(), 0)
		sampler.Start()
		defer sampler.Stop()

		// SLO tracker: rolling error budgets over the latency histograms
		// the registry already collects, sampled in the background.
		tracker := slo.NewTracker(reg, 2*time.Second)
		for _, obj := range slo.DefaultObjectives(*sloWin) {
			if err := tracker.Add(obj); err != nil {
				return fmt.Errorf("slo objective %s: %w", obj.Name, err)
			}
		}
		tracker.Start()
		defer tracker.Stop()

		// Health plane: heartbeat probes plus transfer-cost outlier scoring,
		// publishing NodeDegraded/NodeRecovered into the journal.
		health := hdfs.NewHealthMonitor(cluster, hdfs.HealthConfig{})
		health.Start()
		defer health.Stop()

		obs := &observability{
			journal: jrn, auditor: aud, sampler: sampler,
			tracer: tracer, slo: tracker, health: health,
			progress: prog, tenants: cluster.Tenants(),
		}
		go func() {
			if err := http.Serve(ln, adminMux(reg, cluster, obs)); err != nil {
				slog.Debug("admin server stopped", "err", err)
			}
		}()
		slog.Info("admin endpoint up", "addr", ln.Addr().String())
	}

	slog.Info("serving",
		"racks", *racks, "nodes_per_rack", *nodes, "policy", *policy,
		"n", *n, "k", *k, "c", *c, "addr", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	slog.Info("shutting down")
	return nil
}
