// Command earfs is the client CLI for earfsd: put and get files, list the
// namespace, trigger background encoding, and inject node failures and
// repairs.
//
// Usage:
//
//	earfs -addr 127.0.0.1:7070 put local.bin /remote.bin
//	earfs get /remote.bin local.out
//	earfs ls
//	earfs stat /remote.bin
//	earfs encode
//	earfs fail 3
//	earfs revive 3
//	earfs repair <blockID>
//	earfs info
//	earfs stats
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"ear/internal/netcfs"
	"ear/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "earfs:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: earfs [-addr host:port] {put SRC DST | get SRC DST | ls | stat PATH | rm PATH | encode | fail NODE | revive NODE | repair BLOCK | info | stats}")
}

// printStats renders a StatsReport as aligned human-readable tables.
func printStats(rep *netcfs.StatsReport) {
	fmt.Printf("%-8s %8s %12s %12s %12s\n", "op", "count", "mean", "p50", "p99")
	for _, m := range rep.Ops {
		fmt.Printf("%-8s %8d %11.3fms %11.3fms %11.3fms\n",
			m.Op, m.Count, m.MeanSeconds*1e3, m.P50Seconds*1e3, m.P99Seconds*1e3)
	}
	e := rep.Encode
	fmt.Printf("\nencoding: %d stripes, %.1f MB in %.2fs (%.1f MB/s), cross-rack downloads %d, violations %d\n",
		e.Stripes, float64(e.EncodedBytes)/(1<<20), e.DurationSeconds,
		e.ThroughputMBps, e.CrossRackDownloads, e.Violations)
	if len(rep.TaskLocality) > 0 {
		fmt.Printf("task locality: node=%d rack=%d remote=%d\n",
			rep.TaskLocality["node"], rep.TaskLocality["rack"], rep.TaskLocality["remote"])
	}
	fmt.Printf("fabric: %.1f MB cross-rack, %.1f MB intra-rack\n",
		float64(rep.CrossRackBytes)/(1<<20), float64(rep.IntraRackBytes)/(1<<20))
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:7070", "earfsd address")
	timeout := flag.Duration("timeout", 0, "per-RPC deadline (0 = none); on expiry the server cancels the in-flight operation")
	tenantName := flag.String("tenant", "", "tenant identity charged for this invocation's resource usage (empty = system)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		return usage()
	}
	client, err := netcfs.Dial(*addr)
	if err != nil {
		return err
	}
	defer client.Close()
	client.Timeout = *timeout
	client.Tenant = *tenantName

	switch cmd := args[0]; cmd {
	case "put":
		if len(args) != 3 {
			return usage()
		}
		data, err := os.ReadFile(args[1])
		if err != nil {
			return err
		}
		if err := client.Create(args[2]); err != nil {
			return err
		}
		if err := client.Append(args[2], data); err != nil {
			return err
		}
		if err := client.CloseFile(args[2]); err != nil {
			return err
		}
		fmt.Printf("put %s -> %s (%d bytes)\n", args[1], args[2], len(data))
	case "get":
		if len(args) != 3 {
			return usage()
		}
		data, err := client.Read(args[1])
		if err != nil {
			return err
		}
		if err := os.WriteFile(args[2], data, 0o644); err != nil {
			return err
		}
		fmt.Printf("get %s -> %s (%d bytes)\n", args[1], args[2], len(data))
	case "ls":
		files, err := client.List()
		if err != nil {
			return err
		}
		for _, f := range files {
			fmt.Println(f)
		}
	case "stat":
		if len(args) != 2 {
			return usage()
		}
		fi, err := client.Stat(args[1])
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d bytes, %d blocks, closed=%v\n", fi.Path, fi.Size, len(fi.Blocks), fi.Closed)
		for i, b := range fi.Blocks {
			fmt.Printf("  block %d (id %d) on nodes %v\n", i, b, fi.Locations[i])
		}
	case "rm":
		if len(args) != 2 {
			return usage()
		}
		if err := client.Delete(args[1]); err != nil {
			return err
		}
		fmt.Printf("rm %s\n", args[1])
	case "encode":
		sum, err := client.Encode()
		if err != nil {
			return err
		}
		fmt.Printf("encoded %d stripes (%.1f MB) in %.2fs at %.1f MB/s; cross-rack downloads %d; violations %d\n",
			sum.Stripes, float64(sum.EncodedBytes)/(1<<20), sum.DurationSeconds,
			sum.ThroughputMBps, sum.CrossRackDownloads, sum.Violations)
	case "fail", "revive":
		if len(args) != 2 {
			return usage()
		}
		n, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("node id %q: %w", args[1], err)
		}
		if cmd == "fail" {
			err = client.FailNode(topology.NodeID(n))
		} else {
			err = client.ReviveNode(topology.NodeID(n))
		}
		if err != nil {
			return err
		}
		fmt.Printf("%s node %d\n", cmd, n)
	case "repair":
		if len(args) != 2 {
			return usage()
		}
		b, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return fmt.Errorf("block id %q: %w", args[1], err)
		}
		node, err := client.RepairBlock(topology.BlockID(b))
		if err != nil {
			return err
		}
		fmt.Printf("repaired block %d onto node %d\n", b, node)
	case "info":
		info, err := client.ClusterInfo()
		if err != nil {
			return err
		}
		fmt.Printf("cluster: %d racks x %d nodes, policy=%s, (n,k)=(%d,%d), c=%d, block=%d B\n",
			info.Racks, info.NodesPerRack, info.Policy, info.N, info.K, info.C, info.BlockSizeBytes)
		fmt.Printf("blocks: %d, encoded stripes: %d\n", info.BlockCount, info.EncodedStripes)
	case "stats":
		rep, err := client.Stats()
		if err != nil {
			return err
		}
		printStats(rep)
	default:
		return usage()
	}
	return nil
}
